#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "audio/generators.hpp"
#include "common/math_utils.hpp"
#include "eval/listener.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "dsp/biquad.hpp"

namespace mute::eval {
namespace {

constexpr double kFs = 16000.0;

TEST(Metrics, PerfectCancellationIsVeryNegative) {
  audio::WhiteNoiseSource noise(0.2, 1);
  const auto d = noise.generate(64000);
  Signal r(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    r[i] = d[i] * 0.001f;  // -60 dB residual
  }
  const auto spec = cancellation_spectrum(d, r, kFs, 0.5);
  EXPECT_NEAR(spec.average_db(100, 4000), -60.0, 0.5);
}

TEST(Metrics, NoCancellationIsZero) {
  audio::WhiteNoiseSource noise(0.2, 2);
  const auto d = noise.generate(64000);
  const auto spec = cancellation_spectrum(d, d, kFs, 0.5);
  EXPECT_NEAR(spec.average_db(100, 4000), 0.0, 0.1);
}

TEST(Metrics, BandCancellationSeesShapedResidual) {
  // Residual keeps highs, kills lows -> LF band shows cancellation only.
  audio::WhiteNoiseSource noise(0.2, 3);
  const auto d = noise.generate(64000);
  dsp::Biquad hp = dsp::Biquad::highpass(2000.0, 0.707, kFs);
  Signal r(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) r[i] = hp.process(d[i]);
  const double lf = band_cancellation_db(d, r, kFs, 100, 500, 0.5);
  const double hf = band_cancellation_db(d, r, kFs, 4000, 7000, 0.5);
  EXPECT_LT(lf, -20.0);
  EXPECT_NEAR(hf, 0.0, 1.0);
}

TEST(Metrics, AtFindsNearestBin) {
  CancellationSpectrum s;
  s.freq_hz = {0.0, 100.0, 200.0};
  s.cancellation_db = {-1.0, -2.0, -3.0};
  EXPECT_DOUBLE_EQ(s.at(120.0), -2.0);
}

TEST(Metrics, SmoothingPreservesFlatCurves) {
  CancellationSpectrum s;
  for (int i = 0; i < 100; ++i) {
    s.freq_hz.push_back(i * 50.0);
    s.cancellation_db.push_back(-10.0);
  }
  const auto sm = s.smoothed(6.0);
  for (double v : sm.cancellation_db) EXPECT_NEAR(v, -10.0, 1e-9);
}

TEST(Metrics, SmoothingReducesSpikeHeight) {
  CancellationSpectrum s;
  for (int i = 0; i < 200; ++i) {
    s.freq_hz.push_back(100.0 + i * 20.0);
    s.cancellation_db.push_back(i == 100 ? 20.0 : 0.0);
  }
  const auto sm = s.smoothed(3.0);
  EXPECT_LT(sm.cancellation_db[100], 10.0);
}

TEST(Metrics, MovingRmsTracksEnvelope) {
  Signal x(2000, 0.0f);
  for (std::size_t i = 1000; i < 2000; ++i) x[i] = 1.0f;
  const auto env = moving_rms(x, 100);
  EXPECT_LT(env[500], 0.01);
  EXPECT_NEAR(env[1999], 1.0, 0.01);
}

TEST(Metrics, ConvergenceTimeDetectsDecay) {
  // Error decays exponentially to a floor after 1 second.
  Signal r(static_cast<std::size_t>(4 * kFs));
  Rng rng(5);
  for (std::size_t i = 0; i < r.size(); ++i) {
    const double env = 0.01 + 0.99 * std::exp(-static_cast<double>(i) / (0.25 * kFs));
    r[i] = static_cast<Sample>(env * rng.gaussian());
  }
  const double t = convergence_time_s(r, kFs);
  EXPECT_GT(t, 0.3);
  EXPECT_LT(t, 2.0);
}

TEST(Listener, QuieterResidualScoresHigher) {
  ListenerPanel panel(5, kFs, 42);
  audio::WhiteNoiseSource noise(0.2, 7);
  const auto d = noise.generate(32000);
  Signal quiet(d.size()), loud(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    quiet[i] = d[i] * 0.05f;  // -26 dB
    loud[i] = d[i] * 0.7f;    // -3 dB
  }
  const auto rq = panel.rate(d, quiet);
  const auto rl = panel.rate(d, loud);
  ASSERT_EQ(rq.size(), 5u);
  double mean_q = 0, mean_l = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    mean_q += rq[i].score;
    mean_l += rl[i].score;
  }
  EXPECT_GT(mean_q / 5, mean_l / 5 + 1.0);
}

TEST(Listener, ScoresStayInStarRange) {
  ListenerPanel panel(5, kFs, 1);
  audio::WhiteNoiseSource noise(0.2, 9);
  const auto d = noise.generate(16000);
  Signal silent(d.size(), 1e-6f);
  for (const auto& r : panel.rate(d, silent)) {
    EXPECT_GE(r.score, 1.0);
    EXPECT_LE(r.score, 5.0);
  }
}

TEST(Listener, DeterministicPerSeed) {
  ListenerPanel a(3, kFs, 7), b(3, kFs, 7);
  audio::WhiteNoiseSource noise(0.2, 11);
  const auto d = noise.generate(16000);
  Signal r(d.size(), 0.01f);
  const auto ra = a.rate(d, r);
  const auto rb = b.rate(d, r);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra[i].score, rb[i].score);
  }
}

TEST(Listener, AWeightingDiscountsLowFrequencies) {
  ListenerPanel panel(1, kFs, 3);
  audio::ToneSource low(60.0, 0.5, kFs), mid(1500.0, 0.5, kFs);
  const auto x_low = low.generate(16000);
  const auto x_mid = mid.generate(16000);
  EXPECT_LT(panel.a_weighted_level_db(x_low),
            panel.a_weighted_level_db(x_mid) - 10.0);
}

TEST(Report, TablePrintsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.00"});
  const double vals[] = {2.5};
  t.add_row("beta", vals);
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.50"), std::string::npos);
  EXPECT_NE(s.find("|-"), std::string::npos);
}

TEST(Report, TableRejectsWrongWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Report, FmtFormatsPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(-1.0, 0), "-1");
}

TEST(Report, AsciiChartRendersWithoutCrashing) {
  std::vector<double> x = {0, 1, 2, 3, 4};
  std::vector<Series> series = {{"up", {0, 1, 2, 3, 4}},
                                {"down", {4, 3, 2, 1, 0}}};
  std::ostringstream os;
  print_ascii_chart(os, x, series, "x", "y");
  EXPECT_NE(os.str().find("up"), std::string::npos);
  EXPECT_NE(os.str().find("down"), std::string::npos);
}

TEST(Report, DecimateCurveAverages) {
  std::vector<double> x(100), y(100);
  for (int i = 0; i < 100; ++i) {
    x[i] = i;
    y[i] = 2.0 * i;
  }
  std::vector<double> xo, yo;
  decimate_curve(x, y, 10, xo, yo);
  EXPECT_EQ(xo.size(), 10u);
  EXPECT_NEAR(yo[0], 2.0 * xo[0], 1e-9);
}

}  // namespace
}  // namespace mute::eval
