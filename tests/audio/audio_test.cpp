#include <cmath>
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "audio/construction_synth.hpp"
#include "audio/generators.hpp"
#include "audio/music_synth.hpp"
#include "audio/speech_synth.hpp"
#include "audio/wav.hpp"
#include "common/math_utils.hpp"
#include "dsp/signal_ops.hpp"
#include "dsp/spectral.hpp"

namespace mute::audio {
namespace {

constexpr double kFs = 16000.0;

TEST(WhiteNoise, HasRequestedRms) {
  WhiteNoiseSource src(0.2, 1);
  const auto x = src.generate(50000);
  EXPECT_NEAR(mute::dsp::rms(x), 0.2, 0.01);
}

TEST(WhiteNoise, ResetReplaysIdentically) {
  WhiteNoiseSource src(0.1, 5);
  const auto a = src.generate(100);
  src.reset();
  const auto b = src.generate(100);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(WhiteNoise, SpectrumIsFlat) {
  WhiteNoiseSource src(0.1, 2);
  const auto x = src.generate(64000);
  const auto psd = mute::dsp::welch_psd(x, kFs, 512);
  EXPECT_NEAR(psd.band_power(500, 1500) / psd.band_power(5000, 6000), 1.0,
              0.15);
}

TEST(PinkNoise, LowFrequenciesDominate) {
  PinkNoiseSource src(0.1, 3);
  const auto x = src.generate(64000);
  const auto psd = mute::dsp::welch_psd(x, kFs, 1024);
  // Pink: equal power per octave -> the 100-200 octave outweighs equal-width
  // linear band up high.
  EXPECT_GT(psd.band_power(100, 200), 3.0 * psd.band_power(4000, 4100) * 1.0);
}

TEST(Tone, FrequencyIsExact) {
  ToneSource src(1000.0, 0.5, kFs);
  const auto x = src.generate(16384);
  const auto psd = mute::dsp::welch_psd(x, kFs, 2048);
  std::size_t best = 0;
  for (std::size_t i = 1; i < psd.power.size(); ++i) {
    if (psd.power[i] > psd.power[best]) best = i;
  }
  EXPECT_NEAR(psd.freq_hz[best], 1000.0, kFs / 2048.0);
  EXPECT_NEAR(mute::dsp::peak(x), 0.5, 0.01);
}

TEST(MachineHum, HarmonicsPresent) {
  MachineHumSource src(120.0, 0.2, kFs, 4);
  const auto x = src.generate(64000);
  const auto psd = mute::dsp::welch_psd(x, kFs, 4096);
  // Fundamental and first harmonics well above the floor.
  const double floor_power = psd.band_power(3000, 3500) / 128.0;
  EXPECT_GT(psd.power_at(120.0), 10.0 * floor_power);
  EXPECT_GT(psd.power_at(240.0), 10.0 * floor_power);
}

TEST(Chirp, SweepsUpward) {
  ChirpSource src(200.0, 4000.0, 1.0, 0.5, kFs);
  const auto x = src.generate(16000);
  // Early frames low frequency, late frames high.
  auto frames = mute::dsp::stft_magnitude(x, 512, 256);
  auto centroid = [&](const std::vector<double>& m) {
    double num = 0, den = 0;
    for (std::size_t k = 0; k < m.size(); ++k) {
      num += static_cast<double>(k) * m[k];
      den += m[k];
    }
    return num / std::max(den, 1e-12);
  };
  EXPECT_LT(centroid(frames.front()), centroid(frames.back()) * 0.5);
}

TEST(Intermittent, HasSilentAndActiveSegments) {
  auto inner = std::make_unique<WhiteNoiseSource>(0.3, 7);
  IntermittentSource src(std::move(inner), kFs, 0.3, 0.6, 0.2, 0.5, 11);
  const auto x = src.generate(static_cast<std::size_t>(kFs * 10));
  const auto env = std::vector<double>();
  // Count silent vs loud 50 ms chunks.
  const std::size_t chunk = 800;
  int silent = 0, loud = 0;
  for (std::size_t off = 0; off + chunk <= x.size(); off += chunk) {
    const double r = mute::dsp::rms(std::span<const Sample>(x.data() + off, chunk));
    if (r < 0.01) ++silent;
    if (r > 0.1) ++loud;
  }
  EXPECT_GT(silent, 10);
  EXPECT_GT(loud, 10);
}

TEST(Intermittent, ResetReplays) {
  auto inner = std::make_unique<WhiteNoiseSource>(0.3, 7);
  IntermittentSource src(std::move(inner), kFs, 0.3, 0.6, 0.2, 0.5, 11);
  const auto a = src.generate(5000);
  src.reset();
  const auto b = src.generate(5000);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(BufferSource, LoopsBuffer) {
  BufferSource src({1.0f, 2.0f, 3.0f}, "tri");
  const auto x = src.generate(7);
  EXPECT_FLOAT_EQ(x[0], 1.0f);
  EXPECT_FLOAT_EQ(x[3], 1.0f);
  EXPECT_FLOAT_EQ(x[6], 1.0f);
}

TEST(MixSource, SumsParts) {
  std::vector<SourcePtr> parts;
  parts.push_back(std::make_unique<BufferSource>(Signal{1.0f, 1.0f}, "a"));
  parts.push_back(std::make_unique<BufferSource>(Signal{2.0f, 2.0f}, "b"));
  MixSource mixed(std::move(parts));
  const auto x = mixed.generate(2);
  EXPECT_FLOAT_EQ(x[0], 3.0f);
  EXPECT_FLOAT_EQ(x[1], 3.0f);
}

TEST(Speech, ProducesEnergyInFormantRange) {
  SpeechSource src(SpeechParams::male(), kFs, 3);
  const auto x = src.generate(static_cast<std::size_t>(kFs * 6));
  EXPECT_GT(mute::dsp::rms(x), 0.005);
  const auto psd = mute::dsp::welch_psd(x, kFs, 1024);
  // Speech-band energy dominates the top octave.
  EXPECT_GT(psd.band_power(200, 3000), 5.0 * psd.band_power(5000, 7900));
}

TEST(Speech, MaleAndFemaleDiffer) {
  SpeechSource m(SpeechParams::male(), kFs, 3);
  SpeechSource f(SpeechParams::female(), kFs, 3);
  EXPECT_EQ(m.name(), "male_voice");
  EXPECT_EQ(f.name(), "female_voice");
}

TEST(Speech, ContinuousModeHasNoLongPauses) {
  auto p = SpeechParams::male();
  p.continuous = true;
  SpeechSource src(p, kFs, 9);
  const auto x = src.generate(static_cast<std::size_t>(kFs * 6));
  // Max silent run under 0.5 s.
  std::size_t run = 0, max_run = 0;
  for (Sample v : x) {
    if (std::abs(v) < 1e-4f) {
      ++run;
      max_run = std::max(max_run, run);
    } else {
      run = 0;
    }
  }
  EXPECT_LT(max_run, static_cast<std::size_t>(kFs / 2));
}

TEST(Speech, IntermittentModeHasPauses) {
  SpeechSource src(SpeechParams::male(), kFs, 5);
  const auto x = src.generate(static_cast<std::size_t>(kFs * 12));
  std::size_t run = 0, max_run = 0;
  for (Sample v : x) {
    if (std::abs(v) < 1e-5f) {
      ++run;
      max_run = std::max(max_run, run);
    } else {
      run = 0;
    }
  }
  EXPECT_GT(max_run, static_cast<std::size_t>(kFs / 10));
}

TEST(Music, ProducesTonalOutput) {
  MusicSource src(MusicParams{}, kFs, 4);
  const auto x = src.generate(static_cast<std::size_t>(kFs * 5));
  EXPECT_GT(mute::dsp::rms(x), 0.01);
  const auto psd = mute::dsp::welch_psd(x, kFs, 2048);
  // Tonal: the strongest bin well above the median bin.
  std::vector<double> sorted = psd.power;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(sorted.back(), 30.0 * sorted[sorted.size() / 2]);
}

TEST(Construction, ImpulsiveWithEngineBed) {
  ConstructionSource src(ConstructionParams{}, kFs, 6);
  const auto x = src.generate(static_cast<std::size_t>(kFs * 8));
  // Crest factor well above Gaussian (~3-4 sigma): impacts present.
  EXPECT_GT(mute::dsp::peak(x) / mute::dsp::rms(x), 4.0);
  // LF engine energy present.
  const auto psd = mute::dsp::welch_psd(x, kFs, 1024);
  EXPECT_GT(psd.band_power(20, 200), 0.2 * psd.band_power(200, 2000));
}

TEST(Wav, RoundTripPcm16) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "mute_wav_test.wav";
  WavData in;
  in.sample_rate = 16000.0;
  ToneSource tone(440.0, 0.5, 16000.0);
  in.samples = tone.generate(1600);
  write_wav(path, in);
  const auto out = read_wav(path);
  EXPECT_DOUBLE_EQ(out.sample_rate, 16000.0);
  ASSERT_EQ(out.samples.size(), in.samples.size());
  for (std::size_t i = 0; i < in.samples.size(); ++i) {
    EXPECT_NEAR(out.samples[i], in.samples[i], 1.0 / 32000.0);
  }
  std::filesystem::remove(path);
}

TEST(Wav, ClipsOutOfRangeSamples) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "mute_wav_clip.wav";
  WavData in;
  in.samples = {2.0f, -2.0f, 0.0f};
  write_wav(path, in);
  const auto out = read_wav(path);
  EXPECT_NEAR(out.samples[0], 1.0, 0.001);
  EXPECT_NEAR(out.samples[1], -1.0, 0.001);
  std::filesystem::remove(path);
}

TEST(Wav, RejectsGarbageFile) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "mute_wav_garbage.bin";
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a wav file at all, not even close......", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_wav(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Wav, RejectsMissingFile) {
  EXPECT_THROW(read_wav("/nonexistent/path/foo.wav"), std::runtime_error);
}

namespace {
/// Write a valid mono WAV, then truncate the file to `keep_bytes`.
std::string write_truncated_wav(const char* name, std::size_t keep_bytes) {
  const std::string path = std::filesystem::temp_directory_path() / name;
  WavData in;
  in.sample_rate = 16000.0;
  in.samples.assign(400, 0.25f);
  write_wav(path, in);
  std::filesystem::resize_file(path, keep_bytes);
  return path;
}
}  // namespace

TEST(Wav, RejectsTruncatedRiffHeader) {
  // Cut mid-header: fewer than the 44 bytes a minimal RIFF/WAVE needs.
  const auto path = write_truncated_wav("mute_wav_trunc_header.wav", 20);
  EXPECT_THROW(read_wav(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Wav, RejectsShortDataChunk) {
  // Header intact, but the data chunk promises 800 bytes and the file
  // ends after 100 of them (interrupted download / full disk).
  const auto path = write_truncated_wav("mute_wav_short_data.wav", 44 + 100);
  EXPECT_THROW(read_wav(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Wav, RejectsUnsupportedEncoding) {
  // Structurally valid RIFF/WAVE, but 8-bit PCM — not an encoding the
  // reader supports (PCM16 or float32 only).
  const std::string path = std::filesystem::temp_directory_path() /
                           "mute_wav_pcm8.wav";
  WavData in;
  in.sample_rate = 16000.0;
  in.samples.assign(64, 0.1f);
  write_wav(path, in);
  {
    // Patch fmt: bits-per-sample (offset 34) 16 -> 8, block align
    // (offset 32) 2 -> 1, byte rate (offset 28) halved.
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const unsigned char bits8[] = {8, 0};
    const unsigned char align1[] = {1, 0};
    const unsigned char rate[] = {0x80, 0x3E, 0, 0};  // 16000
    std::fseek(f, 34, SEEK_SET);
    std::fwrite(bits8, 1, 2, f);
    std::fseek(f, 32, SEEK_SET);
    std::fwrite(align1, 1, 2, f);
    std::fseek(f, 28, SEEK_SET);
    std::fwrite(rate, 1, 4, f);
    std::fclose(f);
  }
  EXPECT_THROW(read_wav(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mute::audio

// -- appended coverage for gating / filtering wrappers --------------------
namespace mute::audio {
namespace {

TEST(Gated, PeriodAndDutyCycleRespected) {
  auto inner = std::make_unique<WhiteNoiseSource>(0.5, 3);
  GatedSource g(std::move(inner), kFs, /*period=*/1.0, /*on=*/0.25, 0.0,
                /*ramp=*/0.0);
  const auto x = g.generate(static_cast<std::size_t>(kFs * 3));
  // Energy only in the first quarter of each period.
  for (int p = 0; p < 3; ++p) {
    const auto base = static_cast<std::size_t>(p * kFs);
    const std::span<const Sample> on(x.data() + base,
                                     static_cast<std::size_t>(kFs / 4));
    const std::span<const Sample> off(x.data() + base +
                                          static_cast<std::size_t>(kFs / 2),
                                      static_cast<std::size_t>(kFs / 4));
    EXPECT_GT(mute::dsp::rms(on), 0.3);
    EXPECT_LT(mute::dsp::rms(off), 1e-6);
  }
}

TEST(Gated, PhaseShiftsTheWindow) {
  auto inner = std::make_unique<WhiteNoiseSource>(0.5, 3);
  GatedSource g(std::move(inner), kFs, 1.0, 0.5, /*phase=*/0.5, 0.0);
  const auto x = g.generate(static_cast<std::size_t>(kFs));
  // With phase 0.5 of a 1 s period and 50% duty, (t + phase) % period
  // lands in the ON window for t in [0.5, 1): the SECOND half is on.
  const std::span<const Sample> first(x.data(),
                                      static_cast<std::size_t>(kFs / 2) - 100);
  const std::span<const Sample> second(
      x.data() + static_cast<std::size_t>(kFs / 2) + 100,
      static_cast<std::size_t>(kFs / 2) - 200);
  EXPECT_LT(mute::dsp::rms(first), 1e-6);
  EXPECT_GT(mute::dsp::rms(second), 0.3);
}

TEST(Gated, RampSmoothsEdges) {
  auto inner = std::make_unique<BufferSource>(Signal{1.0f}, "dc");
  GatedSource g(std::move(inner), kFs, 0.5, 0.5, 0.0, /*ramp=*/0.05);
  const auto x = g.generate(static_cast<std::size_t>(kFs / 2));
  EXPECT_LT(x[1], 0.05f);                       // starts near zero
  EXPECT_NEAR(x[static_cast<std::size_t>(kFs / 8)], 1.0f, 1e-4);  // plateau
}

TEST(Gated, ResetReplays) {
  auto inner = std::make_unique<WhiteNoiseSource>(0.5, 9);
  GatedSource g(std::move(inner), kFs, 0.25, 0.5, 0.0);
  const auto a = g.generate(4000);
  g.reset();
  const auto b = g.generate(4000);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(Gated, RejectsBadParameters) {
  EXPECT_THROW(GatedSource(std::make_unique<WhiteNoiseSource>(0.1, 1), kFs,
                           1.0, 0.0, 0.0),
               PreconditionError);
  EXPECT_THROW(GatedSource(std::make_unique<WhiteNoiseSource>(0.1, 1), kFs,
                           1.0, 0.01, 0.0, /*ramp=*/0.5),
               PreconditionError);
}

TEST(Filtered, ShapesSpectrum) {
  mute::dsp::BiquadCascade bp;
  bp.push_section(mute::dsp::Biquad::bandpass(1000.0, 2.0, kFs));
  FilteredSource f(std::make_unique<WhiteNoiseSource>(0.3, 5), std::move(bp),
                   "vb");
  const auto x = f.generate(64000);
  const auto psd = mute::dsp::welch_psd(x, kFs, 1024);
  EXPECT_GT(psd.band_power(800, 1200), 5.0 * psd.band_power(4000, 4400));
  EXPECT_EQ(f.name(), "vb");
}

}  // namespace
}  // namespace mute::audio
