// FxLMS divergence guard: a wrong-sign secondary-path estimate turns the
// NLMS gradient into ascent — the classic field failure after a speaker
// rewire or a garbage calibration. The weight-norm guard must catch the
// runaway and roll back to the last-known-good snapshot.
#include <cmath>

#include <gtest/gtest.h>

#include "adaptive/fxlms.hpp"
#include "common/rng.hpp"

namespace mute::adaptive {
namespace {

/// Drive `eng` for `n` ticks against a plant whose true secondary path is
/// `plant_gain` (the engine's own estimate stays whatever it was built
/// with). Returns the max |anti-noise| seen.
double drive(FxlmsEngine& eng, double plant_gain, int n, Rng& rng) {
  double peak = 0.0;
  for (int t = 0; t < n; ++t) {
    const auto x = static_cast<Sample>(0.3 * rng.gaussian());
    const Sample y = eng.step_output(x);
    peak = std::max(peak, std::abs(static_cast<double>(y)));
    // Primary path: the disturbance is just x; anti-noise arrives through
    // the TRUE plant. With plant_gain opposite the estimate, adaptation
    // diverges.
    const auto e = static_cast<Sample>(static_cast<double>(x) +
                                       plant_gain * static_cast<double>(y));
    eng.adapt(e);
  }
  return peak;
}

TEST(FxlmsGuard, WrongSignPlantDivergesWithoutGuard) {
  FxlmsOptions opt;
  opt.causal_taps = 32;
  opt.mu = 0.5;
  FxlmsEngine eng({1.0}, opt);  // estimate +1, true plant -1
  Rng rng(11);
  // Drive by hand and bail as soon as the runaway is evident: left alone
  // it overflows to inf within a few thousand steps, and the hot path's
  // MUTE_CHECK_FINITE would (correctly) abort the process.
  for (int t = 0; t < 20000 && eng.weight_norm() < 10.0; ++t) {
    const auto x = static_cast<Sample>(0.3 * rng.gaussian());
    const Sample y = eng.step_output(x);
    eng.adapt(static_cast<Sample>(static_cast<double>(x) -
                                  static_cast<double>(y)));
  }
  // Unguarded: the norm runs away (this is the failure the guard exists
  // for; the exact value is unbounded and irrelevant).
  EXPECT_GE(eng.weight_norm(), 10.0);
  EXPECT_EQ(eng.rollback_count(), 0u);
}

TEST(FxlmsGuard, RollbackHaltsForcedDivergence) {
  FxlmsOptions opt;
  opt.causal_taps = 32;
  opt.mu = 0.5;
  opt.weight_norm_limit = 1.0;
  opt.snapshot_interval = 64;
  FxlmsEngine eng({1.0}, opt);
  Rng rng(11);
  const double peak = drive(eng, /*plant_gain=*/-1.0, 4000, rng);
  EXPECT_GE(eng.rollback_count(), 1u);
  EXPECT_LE(eng.weight_norm(), 1.0 + 1e-9);
  EXPECT_TRUE(std::isfinite(peak));
  // Bounded weights on a 0.3-rms reference keep the output bounded too.
  EXPECT_LT(peak, 20.0);
}

TEST(FxlmsGuard, DoesNotFireDuringHealthyConvergence) {
  FxlmsOptions opt;
  opt.causal_taps = 32;
  opt.mu = 0.5;
  opt.weight_norm_limit = 50.0;
  FxlmsEngine eng({1.0}, opt);
  Rng rng(12);
  drive(eng, /*plant_gain=*/1.0, 8000, rng);
  EXPECT_EQ(eng.rollback_count(), 0u);
  // Converged solution: w0 ~ -1 cancels the disturbance through the plant.
  EXPECT_NEAR(eng.weights()[0], -1.0, 0.05);
}

TEST(FxlmsGuard, WeightNormTracksTrueNorm) {
  FxlmsOptions opt;
  opt.causal_taps = 16;
  opt.mu = 0.3;
  opt.weight_norm_limit = 100.0;
  FxlmsEngine eng({1.0, 0.4}, opt);
  Rng rng(13);
  drive(eng, 1.0, 2000, rng);
  double norm2 = 0.0;
  for (const double w : eng.weights()) norm2 += w * w;
  // The incrementally maintained norm must not drift from the real one.
  EXPECT_NEAR(eng.weight_norm(), std::sqrt(norm2), 1e-6);
}

TEST(FxlmsGuard, SetWeightsBecomesTheRollbackTarget) {
  FxlmsOptions opt;
  opt.causal_taps = 4;
  opt.mu = 0.9;
  opt.weight_norm_limit = 1.0;
  FxlmsEngine eng({1.0}, opt);
  const std::vector<double> warm = {0.5, 0.0, 0.0, 0.0};
  eng.set_weights(warm);
  Rng rng(14);
  drive(eng, /*plant_gain=*/-1.0, 2000, rng);
  EXPECT_GE(eng.rollback_count(), 1u);
  // Wherever the runaway was caught, the surviving weights stay inside
  // the limit: the rollback target was the in-band warm start (or a
  // later in-band snapshot), never the diverged state.
  EXPECT_LE(eng.weight_norm(), 1.0 + 1e-9);
}

TEST(FxlmsGuard, ResetClearsRollbackCount) {
  FxlmsOptions opt;
  opt.causal_taps = 8;
  opt.mu = 0.9;
  opt.weight_norm_limit = 0.5;
  FxlmsEngine eng({1.0}, opt);
  Rng rng(15);
  drive(eng, -1.0, 2000, rng);
  ASSERT_GE(eng.rollback_count(), 1u);
  eng.reset();
  EXPECT_EQ(eng.rollback_count(), 0u);
  EXPECT_DOUBLE_EQ(eng.weight_norm(), 0.0);
}

}  // namespace
}  // namespace mute::adaptive
