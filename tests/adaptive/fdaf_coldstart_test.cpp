// BlockFdaf regression coverage for the two runtime-readiness bugs fixed
// alongside the block LANC engine (ISSUE 8):
//
//  1. Cold-start divergence: the per-bin power EMA started at zero, so the
//     first blocks normalized the gradient by epsilon (1e-8) alone and a
//     loud first block exploded the initial weight step. The estimate is
//     now seeded from the first block's own per-bin power.
//  2. Per-block heap allocations: xf/yf/ef/grad spectra were constructed
//     on every step_block call; they are now preallocated members and the
//     path is MUTE_RT_SAFE.
//
// Plus the weights() round-trip and constrained-vs-unconstrained tail
// behavior the block engines rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "adaptive/fdaf.hpp"
#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "dsp/fir_filter.hpp"

namespace mute::adaptive {
namespace {

// A plant with energy spread over a couple hundred taps.
std::vector<double> make_plant(std::size_t taps, unsigned seed) {
  Rng rng(seed);
  std::vector<double> h(taps);
  for (std::size_t i = 0; i < taps; ++i) {
    const double decay = std::exp(-static_cast<double>(i) / 40.0);
    h[i] = rng.gaussian(0.5) * decay;
  }
  return h;
}

Signal run_plant(const std::vector<double>& h, const Signal& x) {
  dsp::FirFilter f(h);
  return f.filter(x);
}

TEST(BlockFdafColdStart, LoudFirstBlockDoesNotDiverge) {
  // Drive with a *loud* signal from sample zero. With the zero-seeded EMA
  // the first gradient was scaled by ~|X|^2/epsilon ~ 1e+10 and the error
  // blew up past any plant energy; with power seeding the first update is
  // a sane normalized step and the error stays bounded by the input scale.
  BlockFdaf::Options opts;
  opts.taps = 128;
  BlockFdaf fdaf(opts);
  const std::size_t block = fdaf.block_size();

  const auto h = make_plant(96, 41);
  Rng rng(42);
  Signal x(block * 8);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian(30.0));  // loud!
  const auto d = run_plant(h, x);

  const auto err = fdaf.identify(x, d);
  double peak_in = 0.0, peak_err = 0.0;
  for (const auto v : x) peak_in = std::max(peak_in, std::abs(double(v)));
  for (const auto v : err) {
    ASSERT_TRUE(std::isfinite(v));
    peak_err = std::max(peak_err, std::abs(double(v)));
  }
  // Pre-fix the first adapted block's error overshot the input by orders
  // of magnitude. Post-fix it stays within the plant's own gain envelope.
  double plant_gain = 0.0;
  for (double c : h) plant_gain += std::abs(c);
  EXPECT_LT(peak_err, 2.0 * plant_gain * peak_in);

  // And it still converges: last-quarter error well below first-quarter.
  const std::size_t q = err.size() / 4;
  double head = 0.0, tail = 0.0;
  for (std::size_t i = 0; i < q; ++i) head += double(err[i]) * double(err[i]);
  for (std::size_t i = err.size() - q; i < err.size(); ++i)
    tail += double(err[i]) * double(err[i]);
  EXPECT_LT(tail, 0.05 * head);
}

TEST(BlockFdafColdStart, FirstStepMatchesPrePrimedFilter) {
  // Seeding from the first block must behave like a filter whose EMA had
  // already settled on that block's spectrum: run one copy cold and one
  // copy that saw the same block before reset of everything except power.
  BlockFdaf::Options opts;
  opts.taps = 64;
  BlockFdaf cold(opts);
  const std::size_t block = cold.block_size();

  Rng rng(7);
  Signal x(block), d(block), e(block);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian());
  for (std::size_t i = 0; i < block; ++i)
    d[i] = static_cast<Sample>(0.5 * double(x[i]));

  cold.step_block(x, d, e);
  const auto w = cold.weights();
  double wmax = 0.0;
  for (double v : w) wmax = std::max(wmax, std::abs(v));
  // The normalized first step is O(mu): no epsilon-division explosion.
  EXPECT_LT(wmax, 1.0);
  EXPECT_GT(wmax, 1e-4);  // ...but it did actually adapt.
}

TEST(BlockFdafRt, StepBlockIsAllocationFreeAfterConstruction) {
  BlockFdaf::Options opts;
  opts.taps = 256;
  BlockFdaf fdaf(opts);
  const std::size_t block = fdaf.block_size();

  Rng rng(9);
  Signal x(block), d(block), e(block);
  auto fill = [&] {
    for (std::size_t i = 0; i < block; ++i) {
      x[i] = static_cast<Sample>(rng.gaussian());
      d[i] = static_cast<Sample>(rng.gaussian(0.3));
    }
  };
  // Warm one block outside the guard (first-touch paging etc.).
  fill();
  fdaf.step_block(x, d, e);

  RtAllocationGuard guard(RtAllocationGuard::Mode::kCount, "fdaf-step");
  for (int b = 0; b < 8; ++b) {
    fill();
    fdaf.step_block(x, d, e);
  }
  if (RtAllocationGuard::interposition_enabled()) {
    EXPECT_EQ(guard.allocations_since_entry(), 0u);
  }
}

TEST(BlockFdafWeights, RoundTripRecoversPlant) {
  // After convergence on a plant shorter than the filter, weights() must
  // return the plant coefficients (head) and near-zeros past its length.
  BlockFdaf::Options opts;
  opts.taps = 128;
  opts.mu = 0.5;
  BlockFdaf fdaf(opts);
  const std::size_t block = fdaf.block_size();

  const std::size_t plant_taps = 48;
  const auto h = make_plant(plant_taps, 11);
  Rng rng(12);
  Signal x(block * 64);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian());
  const auto d = run_plant(h, x);
  fdaf.identify(x, d);

  const auto w = fdaf.weights();
  ASSERT_EQ(w.size(), fdaf.tap_count());
  for (std::size_t i = 0; i < plant_taps; ++i) {
    EXPECT_NEAR(w[i], h[i], 0.02) << "tap " << i;
  }
  for (std::size_t i = plant_taps; i < w.size(); ++i) {
    EXPECT_NEAR(w[i], 0.0, 0.02) << "tap " << i;
  }
}

TEST(BlockFdafConstraint, UnconstrainedLeaksCircularTailConstrainedDoesNot) {
  // The gradient constraint zeroes the acausal (wraparound) half of every
  // weight update, so a constrained filter's circular response stays
  // identically zero there. Unconstrained adaptation lets gradient noise
  // excite those taps: with observation noise on the desired signal (so
  // the error never dies) the acausal half carries a persistent noise
  // floor. Compare the acausal mass of the full circular response on the
  // same data. (Noise is essential: with noiseless realizable data even
  // the unconstrained filter converges to the exact [h | 0] solution.)
  const std::size_t plant_taps = 24;
  const auto h = make_plant(plant_taps, 21);

  auto acausal_mass = [&](bool constrained) {
    BlockFdaf::Options opts;
    opts.taps = 64;
    opts.constrained = constrained;
    BlockFdaf fdaf(opts);
    Rng local(22);
    Signal x(fdaf.block_size() * 96);
    for (auto& v : x) v = static_cast<Sample>(local.gaussian());
    auto d = run_plant(h, x);
    for (auto& v : d) v += static_cast<Sample>(local.gaussian(0.1));
    fdaf.identify(x, d);
    const auto w = fdaf.weights_full();
    double tail = 0.0;
    for (std::size_t i = fdaf.block_size(); i < w.size(); ++i) {
      tail += w[i] * w[i];
    }
    return tail;
  };

  const double constrained_tail = acausal_mass(true);
  const double unconstrained_tail = acausal_mass(false);
  // Constrained: zero up to IFFT/FFT round-trip noise. Unconstrained:
  // frozen transient leakage, orders of magnitude above it.
  EXPECT_LT(constrained_tail, 1e-12);
  EXPECT_GT(unconstrained_tail, 1e-6);
  EXPECT_GT(unconstrained_tail, 1e3 * constrained_tail);
}

}  // namespace
}  // namespace mute::adaptive
