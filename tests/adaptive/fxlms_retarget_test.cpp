// Edge-case pins for FxlmsEngine::retarget_noncausal (satellite S2): the
// weight remap w_new[i] = w_old[i + shift] must zero-fill cleanly when the
// shift moves partially or entirely outside the old tap window, in both
// directions, and the remapped weights must become the rollback snapshot
// so the divergence guard cannot resurrect stale taps.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "adaptive/fxlms.hpp"

namespace mute::adaptive {
namespace {

FxlmsEngine make_engine(std::size_t causal, std::size_t noncausal) {
  FxlmsOptions opts;
  opts.causal_taps = causal;
  opts.noncausal_taps = noncausal;
  opts.mu = 0.5;
  opts.weight_norm_limit = 100.0;
  return FxlmsEngine({1.0}, opts);
}

/// Distinct, recognizable weights: w[i] = i + 1.
void load_ramp(FxlmsEngine& engine) {
  std::vector<double> w(engine.total_taps());
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<double>(i + 1);
  }
  engine.set_weights(w);
}

TEST(FxlmsRetarget, InRangeShiftRealignsWeights) {
  auto engine = make_engine(6, 4);  // total 10
  load_ramp(engine);
  engine.retarget_noncausal(2, 3);  // total 8, src = i + 3
  ASSERT_EQ(engine.total_taps(), 8u);
  ASSERT_EQ(engine.noncausal_taps(), 2u);
  const auto& w = engine.weights();
  for (std::size_t i = 0; i < w.size(); ++i) {
    const std::size_t src = i + 3;
    EXPECT_DOUBLE_EQ(w[i], src < 10 ? static_cast<double>(src + 1) : 0.0)
        << "tap " << i;
  }
}

TEST(FxlmsRetarget, PositiveShiftBeyondWindowZeroFills) {
  auto engine = make_engine(6, 4);
  load_ramp(engine);
  // Every source index i + 10 falls past the old window: all-zero result,
  // not garbage and not an out-of-range read.
  engine.retarget_noncausal(4, 10);
  for (const double w : engine.weights()) EXPECT_DOUBLE_EQ(w, 0.0);
  EXPECT_DOUBLE_EQ(engine.weight_norm(), 0.0);
}

TEST(FxlmsRetarget, NegativeShiftBeyondWindowZeroFills) {
  auto engine = make_engine(6, 4);
  load_ramp(engine);
  // src = i - 8 stays negative for the whole new window of 8 taps.
  engine.retarget_noncausal(2, -8);
  for (const double w : engine.weights()) EXPECT_DOUBLE_EQ(w, 0.0);
}

TEST(FxlmsRetarget, PartialNegativeShiftZeroFillsTheHead) {
  auto engine = make_engine(6, 4);
  load_ramp(engine);
  engine.retarget_noncausal(4, -2);  // same total, shifted toward the past
  const auto& w = engine.weights();
  ASSERT_EQ(w.size(), 10u);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  for (std::size_t i = 2; i < w.size(); ++i) {
    EXPECT_DOUBLE_EQ(w[i], static_cast<double>(i - 2 + 1)) << "tap " << i;
  }
}

TEST(FxlmsRetarget, GrowingTheWindowKeepsSurvivingTapsAligned) {
  auto engine = make_engine(6, 2);  // total 8
  load_ramp(engine);
  // The new relay leads by more: the window grows by 4 noncausal taps and
  // the surviving weights slide to stay aligned in source time.
  engine.retarget_noncausal(6, -4);  // total 12, src = i - 4
  const auto& w = engine.weights();
  ASSERT_EQ(w.size(), 12u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(w[i], 0.0);
  for (std::size_t i = 4; i < w.size(); ++i) {
    EXPECT_DOUBLE_EQ(w[i], static_cast<double>(i - 4 + 1));
  }
}

TEST(FxlmsRetarget, ShrinkingToZeroNoncausalDropsTheFutureTaps) {
  auto engine = make_engine(6, 4);
  load_ramp(engine);
  // Degenerate to a conventional causal filter (N = 0): with shift N_old
  // the causal taps survive unchanged.
  engine.retarget_noncausal(0, 4);
  const auto& w = engine.weights();
  ASSERT_EQ(w.size(), 6u);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_DOUBLE_EQ(w[i], static_cast<double>(i + 4 + 1));
  }
}

TEST(FxlmsRetarget, RemappedWeightsBecomeTheRollbackSnapshot) {
  auto engine = make_engine(6, 4);
  load_ramp(engine);
  engine.retarget_noncausal(4, 10);  // all-zero remap
  // The remap cleared the history and adopted the (zero) weights as the
  // snapshot: subsequent adaptation starts from zero and stays finite —
  // a stale 10-tap snapshot would either crash the guard (size mismatch)
  // or resurrect weights from the wrong relay on rollback.
  for (int t = 0; t < 2000; ++t) {
    engine.push_reference(static_cast<Sample>((t % 7) * 0.05 - 0.15));
    (void)engine.compute_antinoise();
    engine.adapt(static_cast<Sample>((t % 5) * 0.04 - 0.08));
  }
  EXPECT_EQ(engine.rollback_count(), 0u);
  EXPECT_LT(engine.weight_norm(), 100.0);
}

TEST(FxlmsRetarget, HistoryIsClearedByTheRemap) {
  auto engine = make_engine(6, 4);
  load_ramp(engine);
  for (int t = 0; t < 100; ++t) {
    engine.push_reference(0.5f);
  }
  EXPECT_GT(engine.reference_power(), 0.0);
  engine.retarget_noncausal(4, 0);
  // The old relay's stream must not leak through the handoff: the window
  // and the NLMS power term restart empty.
  EXPECT_DOUBLE_EQ(engine.reference_power(), 0.0);
  for (const double x : engine.reference_window()) {
    EXPECT_DOUBLE_EQ(x, 0.0);
  }
}

}  // namespace
}  // namespace mute::adaptive
