// Regression test for the NLMS denominator ||u||^2 (DESIGN.md §10): the
// incremental add-newest/subtract-oldest update accumulates floating-point
// rounding error without bound, which matters exactly when the signal
// moves between loud and quiet regimes — residue from a loud phase can
// dwarf the true power of a quiet phase and collapse the normalized step
// size. push_reference() re-syncs the sum with an exact kernel recompute
// every total_taps() pushes, so the drift observed over ~1e6 samples must
// stay at recompute precision.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "adaptive/fxlms.hpp"
#include "common/rng.hpp"
#include "dsp/kernels.hpp"

namespace {

using namespace mute;

// Identity secondary path: u(t) == x(t), so the expected window power can
// be recomputed from the raw input stream without replicating the filter.
adaptive::FxlmsEngine make_engine(std::size_t taps) {
  std::vector<double> hse(8, 0.0);
  hse[0] = 1.0;
  adaptive::FxlmsOptions opts;
  opts.causal_taps = taps / 2;
  opts.noncausal_taps = taps - taps / 2;
  return adaptive::FxlmsEngine(hse, opts);
}

double window_power(const std::vector<double>& u, std::size_t taps) {
  const std::size_t n = u.size();
  return dsp::kernels::energy(u.data() + (n - taps), taps);
}

TEST(FxlmsReferencePower, NoDriftAcrossLoudQuietRegimes) {
  const std::size_t taps = 512;
  auto engine = make_engine(taps);
  Rng rng(2026);
  std::vector<double> u;
  u.reserve(1'100'000);

  const auto push_n = [&](std::size_t count, double amplitude) {
    for (std::size_t i = 0; i < count; ++i) {
      // Quantize to Sample first: that is the value the engine's history
      // stores (identity secondary path), so the reference stream must
      // carry the same float-rounded doubles.
      const auto x = static_cast<Sample>(rng.gaussian() * amplitude);
      u.push_back(static_cast<double>(x));
      engine.push_reference(x);
    }
  };

  // Loud phase: window power ~ taps * 1e8.
  push_n(500'000, 1e4);
  // Quiet phase: window power ~ taps * 1e-12 — nine orders below one ULP
  // of the loud-phase sum, so any surviving incremental residue would be
  // off by many orders of magnitude.
  push_n(500'000, 1e-6);
  // Land exactly on a re-sync boundary (sync fires every `taps` pushes),
  // where the maintained sum is a fresh kernel recompute of the window.
  const std::size_t total = 1'000'000;
  const std::size_t to_boundary = (taps - total % taps) % taps;
  push_n(to_boundary == 0 ? taps : to_boundary, 1e-6);

  const double expected = window_power(u, taps);
  const double got = engine.reference_power();
  ASSERT_GT(expected, 0.0);
  // Same kernel, same window, evaluated from float-quantized history on
  // both sides — only the in-window incremental updates since the last
  // sync separate them.
  EXPECT_NEAR(got, expected, 1e-9 * expected)
      << "got " << got << " expected " << expected;
}

TEST(FxlmsReferencePower, TracksFromScratchSumDuringSteadyStream) {
  const std::size_t taps = 64;
  auto engine = make_engine(taps);
  Rng rng(7);
  std::vector<double> u;
  for (std::size_t t = 0; t < 10'000; ++t) {
    const auto x = static_cast<Sample>(rng.gaussian() * 0.3);
    u.push_back(static_cast<double>(x));
    engine.push_reference(x);
    if (u.size() >= taps && t % 97 == 0) {
      const double expected = window_power(u, taps);
      EXPECT_NEAR(engine.reference_power(), expected,
                  1e-9 * (expected + 1e-12))
          << "t=" << t;
    }
  }
}

}  // namespace
