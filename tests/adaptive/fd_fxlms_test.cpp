// Partitioned-block frequency-domain FxLMS (DESIGN.md §13): the block
// engine must (a) convolve EXACTLY like the weight vector says it does —
// fixed weights, overlap-save output equals direct convolution to FFT
// rounding error; (b) round-trip weights through the partition spectra;
// (c) match the pinned time-domain FxlmsEngine within tolerance on
// residual trajectories across noise / tonal / retarget scenarios; and
// (d) stay allocation-free in steady state.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "adaptive/fd_fxlms.hpp"
#include "adaptive/fxlms.hpp"
#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace mute::adaptive {
namespace {

std::vector<double> random_taps(std::size_t n, unsigned seed,
                                double scale = 0.3) {
  Rng rng(seed);
  std::vector<double> w(n);
  for (auto& v : w) v = rng.gaussian(scale);
  return w;
}

// Direct convolution reference: y(t) = sum_i w[i] * x(t - i), x zero for
// t < 0.
double direct_conv(const std::vector<double>& w, const Signal& x,
                   std::size_t t) {
  double acc = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (t >= i) acc += w[i] * static_cast<double>(x[t - i]);
  }
  return acc;
}

TEST(FdFxlms, FixedWeightOutputMatchesDirectConvolution) {
  // Tap counts that exercise full and partial final partitions.
  for (const std::size_t total : {32UL, 48UL, 96UL, 100UL}) {
    FdFxlmsOptions opt;
    opt.causal_taps = total;
    opt.noncausal_taps = 0;
    opt.block = 32;
    FdFxlmsEngine eng({1.0}, opt);
    ASSERT_EQ(eng.total_taps(), total);

    const auto w = random_taps(total, 500 + static_cast<unsigned>(total));
    eng.set_weights(w);

    Rng rng(77);
    const std::size_t blocks = 7;
    Signal x(blocks * eng.block_size());
    for (auto& v : x) v = static_cast<Sample>(rng.gaussian());

    Signal y(x.size());
    for (std::size_t b = 0; b < blocks; ++b) {
      eng.process_block(
          std::span<const Sample>(x.data() + b * eng.block_size(),
                                  eng.block_size()),
          std::span<Sample>(y.data() + b * eng.block_size(),
                            eng.block_size()));
    }
    for (std::size_t t = 0; t < x.size(); ++t) {
      EXPECT_NEAR(static_cast<double>(y[t]), direct_conv(w, x, t), 1e-4)
          << "total=" << total << " t=" << t;
    }
  }
}

TEST(FdFxlms, WeightsRoundTripThroughPartitionSpectra) {
  for (const std::size_t total : {16UL, 48UL, 100UL, 2048UL}) {
    FdFxlmsOptions opt;
    opt.causal_taps = total / 2;
    opt.noncausal_taps = total - total / 2;
    opt.block = 0;  // auto
    FdFxlmsEngine eng({1.0}, opt);
    const auto w = random_taps(total, 600 + static_cast<unsigned>(total));
    eng.set_weights(w);
    const auto got = eng.weights();
    ASSERT_EQ(got.size(), total);
    for (std::size_t i = 0; i < total; ++i) {
      EXPECT_NEAR(got[i], w[i], 1e-10) << "total=" << total << " i=" << i;
    }
  }
}

TEST(FdFxlms, RetargetRemapsWeightsLikeTimeDomainEngine) {
  FdFxlmsOptions opt;
  opt.causal_taps = 40;
  opt.noncausal_taps = 24;
  opt.block = 16;
  FdFxlmsEngine eng({1.0}, opt);
  const auto w = random_taps(64, 9);
  eng.set_weights(w);

  const std::ptrdiff_t shift = 8;  // lose 8 future taps
  eng.retarget_noncausal(16, shift);
  ASSERT_EQ(eng.total_taps(), 56u);
  ASSERT_EQ(eng.noncausal_taps(), 16u);
  const auto got = eng.weights();
  for (std::size_t i = 0; i < got.size(); ++i) {
    const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) + shift;
    const double want =
        (j >= 0 && j < static_cast<std::ptrdiff_t>(w.size())) ? w[j] : 0.0;
    EXPECT_NEAR(got[i], want, 1e-10) << "i=" << i;
  }
}

// Shared mini acoustic loop for the engine-level equivalence scenarios:
// the engines are fed the advanced stream xa(t) = n(t + lead); the ear
// hears e(t) = d(t) + (h_se * y)(t) with d the primary-path noise. Both
// engines see the identical sequence; the block engine adapts once per
// block, the reference engine every sample.
struct Scenario {
  std::vector<double> h_se;   // true (and estimated) secondary path
  std::size_t lead = 16;      // acoustic lead of the reference stream
  std::size_t primary_delay = 10;
  std::size_t len = 48000;
};

Signal make_noise(const Scenario& sc, unsigned seed, bool tonal) {
  Rng rng(seed);
  Signal n(sc.len);
  double lp = 0.0;
  for (std::size_t t = 0; t < sc.len; ++t) {
    if (tonal) {
      n[t] = static_cast<Sample>(
          0.4 * std::sin(0.13 * static_cast<double>(t)) +
          0.2 * std::sin(0.047 * static_cast<double>(t) + 1.0) +
          rng.gaussian(0.05));
    } else {
      // Colored noise: one-pole lowpass of white.
      lp = 0.9 * lp + rng.gaussian(0.3);
      n[t] = static_cast<Sample>(lp);
    }
  }
  return n;
}

// Run either engine through the scenario; returns mean-square error over
// the last quarter (converged residual power).
template <typename StepFn>
double run_loop(const Scenario& sc, const Signal& n, StepFn&& step) {
  std::vector<double> y_hist(sc.h_se.size(), 0.0);  // y(t-1), y(t-2), ...
  double err_acc = 0.0;
  std::size_t err_n = 0;
  for (std::size_t t = 0; t < sc.len; ++t) {
    const Sample xa =
        (t + sc.lead < sc.len) ? n[t + sc.lead] : Sample{0};
    const Sample y = step(xa);
    // Acoustic mix: secondary path applied to the *played* anti-noise.
    std::rotate(y_hist.rbegin(), y_hist.rbegin() + 1, y_hist.rend());
    y_hist[0] = static_cast<double>(y);
    double a = 0.0;
    for (std::size_t i = 0; i < sc.h_se.size(); ++i) {
      a += sc.h_se[i] * y_hist[i];
    }
    const double d = (t >= sc.primary_delay)
                         ? static_cast<double>(n[t - sc.primary_delay])
                         : 0.0;
    const double e = d + a;
    step.observe(static_cast<Sample>(e));
    if (t >= 3 * sc.len / 4) {
      err_acc += e * e;
      ++err_n;
    }
  }
  return err_acc / static_cast<double>(err_n);
}

struct TdStepper {
  FxlmsEngine* eng;
  Sample operator()(Sample xa) { return eng->step_output(xa); }
  void observe(Sample e) { eng->adapt(e); }
};

struct FdStepper {
  FdFxlmsEngine* eng;
  Signal in, out, err;
  std::size_t in_fill = 0, out_pos = 0, err_fill = 0;
  bool ready = false, can_adapt = false;

  explicit FdStepper(FdFxlmsEngine* e)
      : eng(e), in(e->block_size()), out(e->block_size()),
        err(e->block_size()) {}

  Sample operator()(Sample xa) {
    if (in_fill == eng->block_size()) {
      eng->process_block(in, out);
      in_fill = 0;
      out_pos = 0;
      ready = true;
      can_adapt = true;
    }
    in[in_fill++] = xa;
    return ready ? out[out_pos++] : Sample{0};
  }
  void observe(Sample e) {
    err[err_fill++] = e;
    if (err_fill == eng->block_size()) {
      if (can_adapt) eng->adapt_block(err);
      can_adapt = false;
      err_fill = 0;
    }
  }
};

// The pinned equivalence tolerance (DESIGN.md §13): both engines must
// cancel (>= 10 dB below the passive ear) and the FD residual must come
// within +3 dB of the time-domain reference. The bound is one-sided: the
// per-bin normalization routinely converges *deeper* than per-sample NLMS
// on colored spectra (that equalized convergence is the engine's point),
// so a lower FD residual is success, not a mismatch.
void expect_equivalent(double mse_td, double mse_fd, double passive) {
  EXPECT_LT(mse_td, 0.1 * passive);
  EXPECT_LT(mse_fd, 0.1 * passive);
  const double ratio_db = 10.0 * std::log10(mse_fd / mse_td);
  EXPECT_LT(ratio_db, 3.0)
      << "FD residual " << ratio_db << " dB above the TD reference";
}

double passive_power(const Scenario& sc, const Signal& n) {
  double acc = 0.0;
  std::size_t cnt = 0;
  for (std::size_t t = 3 * sc.len / 4; t < sc.len; ++t) {
    const double d = (t >= sc.primary_delay)
                         ? static_cast<double>(n[t - sc.primary_delay])
                         : 0.0;
    acc += d * d;
    ++cnt;
  }
  return acc / static_cast<double>(cnt);
}

Scenario default_scenario() {
  Scenario sc;
  sc.h_se.assign(6, 0.0);
  sc.h_se[2] = 0.9;
  sc.h_se[3] = 0.25;
  return sc;
}

TEST(FdFxlmsEquivalence, ColoredNoiseResidualMatchesTimeDomain) {
  const Scenario sc = default_scenario();
  const auto n = make_noise(sc, 101, /*tonal=*/false);

  FxlmsOptions td;
  td.mu = 0.1;
  td.causal_taps = 48;
  td.noncausal_taps = sc.lead;
  FxlmsEngine td_eng(sc.h_se, td);

  FdFxlmsOptions fd;
  fd.mu = 0.1;
  fd.causal_taps = 48;
  fd.block = 8;
  fd.noncausal_taps = sc.lead - fd.block;
  FdFxlmsEngine fd_eng(sc.h_se, fd);

  const double mse_td = run_loop(sc, n, TdStepper{&td_eng});
  const double mse_fd = run_loop(sc, n, FdStepper{&fd_eng});
  expect_equivalent(mse_td, mse_fd, passive_power(sc, n));
}

TEST(FdFxlmsEquivalence, TonalNoiseResidualMatchesTimeDomain) {
  const Scenario sc = default_scenario();
  const auto n = make_noise(sc, 202, /*tonal=*/true);

  FxlmsOptions td;
  td.mu = 0.1;
  td.causal_taps = 48;
  td.noncausal_taps = sc.lead;
  FxlmsEngine td_eng(sc.h_se, td);

  FdFxlmsOptions fd;
  fd.mu = 0.1;
  fd.causal_taps = 48;
  fd.block = 8;
  fd.noncausal_taps = sc.lead - fd.block;
  FdFxlmsEngine fd_eng(sc.h_se, fd);

  const double mse_td = run_loop(sc, n, TdStepper{&td_eng});
  const double mse_fd = run_loop(sc, n, FdStepper{&fd_eng});
  expect_equivalent(mse_td, mse_fd, passive_power(sc, n));
}

TEST(FdFxlmsEquivalence, ConstraintSchedulesAgree) {
  // Round-robin constraint projection must land within tolerance of the
  // exact (full) MDF constraint — the scheduling is a cost optimization,
  // not an algorithm change.
  const Scenario sc = default_scenario();
  const auto n = make_noise(sc, 303, /*tonal=*/false);

  auto run_with = [&](FdConstraint c) {
    FdFxlmsOptions fd;
    fd.mu = 0.1;
  fd.causal_taps = 48;
    fd.block = 8;
    fd.noncausal_taps = sc.lead - fd.block;
    fd.constraint = c;
    FdFxlmsEngine eng(sc.h_se, fd);
    return run_loop(sc, n, FdStepper{&eng});
  };
  const double mse_full = run_with(FdConstraint::kFull);
  const double mse_rr = run_with(FdConstraint::kRoundRobin);
  const double ratio_db = 10.0 * std::log10(mse_rr / mse_full);
  EXPECT_LT(std::abs(ratio_db), 3.0);
}

TEST(FdFxlmsEquivalence, RetargetKeepsCancellingLikeTimeDomain) {
  // Mid-run, hand off to a relay whose lead is 4 samples shorter. Both
  // engines take the same remap; both must re-converge to equivalent
  // residuals (the FD pipeline block is unchanged, so its shift formula
  // must cancel the block term — pinned here).
  Scenario sc = default_scenario();
  sc.len = 64000;
  const auto n = make_noise(sc, 404, /*tonal=*/false);
  const std::size_t new_lead = sc.lead - 4;

  FxlmsOptions td;
  td.mu = 0.1;
  td.causal_taps = 48;
  td.noncausal_taps = sc.lead;
  FxlmsEngine td_eng(sc.h_se, td);

  FdFxlmsOptions fd;
  fd.mu = 0.1;
  fd.causal_taps = 48;
  fd.block = 8;
  fd.noncausal_taps = sc.lead - fd.block;
  FdFxlmsEngine fd_eng(sc.h_se, fd);

  auto run_with_handoff = [&](auto&& step, auto&& retarget) {
    double err_acc = 0.0;
    std::size_t err_n = 0;
    std::vector<double> y_hist(sc.h_se.size(), 0.0);
    std::size_t lead = sc.lead;
    for (std::size_t t = 0; t < sc.len; ++t) {
      if (t == sc.len / 2) {
        retarget();
        lead = new_lead;
      }
      const Sample xa = (t + lead < sc.len) ? n[t + lead] : Sample{0};
      const Sample y = step(xa);
      std::rotate(y_hist.rbegin(), y_hist.rbegin() + 1, y_hist.rend());
      y_hist[0] = static_cast<double>(y);
      double a = 0.0;
      for (std::size_t i = 0; i < sc.h_se.size(); ++i) {
        a += sc.h_se[i] * y_hist[i];
      }
      const double d = (t >= sc.primary_delay)
                           ? static_cast<double>(n[t - sc.primary_delay])
                           : 0.0;
      const double e = d + a;
      step.observe(static_cast<Sample>(e));
      if (t >= 7 * sc.len / 8) {
        err_acc += e * e;
        ++err_n;
      }
    }
    return err_acc / static_cast<double>(err_n);
  };

  // Source-time remap w_new[i] = w_old[i + shift] with shift =
  // N_old - N_new. The FD engine's noncausal counts are both offset by B,
  // so the same shift applies (the block term cancels).
  const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(sc.lead) -
                               static_cast<std::ptrdiff_t>(new_lead);

  TdStepper td_step{&td_eng};
  const double mse_td = run_with_handoff(td_step, [&] {
    td_eng.retarget_noncausal(new_lead, shift);
  });
  FdStepper fd_step{&fd_eng};
  const double mse_fd = run_with_handoff(fd_step, [&] {
    fd_eng.retarget_noncausal(new_lead - fd_eng.block_size(), shift);
    fd_step.in_fill = 0;
    fd_step.out_pos = 0;
    fd_step.err_fill = 0;
    fd_step.ready = false;
    fd_step.can_adapt = false;
    std::fill(fd_step.out.begin(), fd_step.out.end(), Sample{0});
  });

  const double passive = passive_power(sc, n);
  EXPECT_LT(mse_td, 0.1 * passive);
  EXPECT_LT(mse_fd, 0.1 * passive);
  const double ratio_db = 10.0 * std::log10(mse_fd / mse_td);
  EXPECT_LT(ratio_db, 3.0);  // one-sided, as in expect_equivalent
}

TEST(FdFxlmsRt, BlockPathIsAllocationFreeInSteadyState) {
  FdFxlmsOptions opt;
  opt.causal_taps = 1024;
  opt.noncausal_taps = 1024;
  opt.block = 256;
  FdFxlmsEngine eng(std::vector<double>{1.0, 0.4, 0.1}, opt);

  Rng rng(55);
  Signal x(opt.block), y(opt.block), e(opt.block);
  auto fill = [&] {
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<Sample>(rng.gaussian());
      e[i] = static_cast<Sample>(rng.gaussian(0.1));
    }
  };
  fill();
  eng.process_block(x, y);
  eng.adapt_block(e);

  RtAllocationGuard guard(RtAllocationGuard::Mode::kCount, "fd-block-path");
  for (int b = 0; b < 8; ++b) {
    fill();
    eng.process_block(x, y);
    eng.adapt_block(e);
  }
  if (RtAllocationGuard::interposition_enabled()) {
    EXPECT_EQ(guard.allocations_since_entry(), 0u);
  }
}

TEST(FdFxlms, AdaptRequiresMatchingProcessBlock) {
  FdFxlmsOptions opt;
  opt.causal_taps = 32;
  opt.block = 16;
  FdFxlmsEngine eng({1.0}, opt);
  Signal e(16, 0.1f);
  EXPECT_THROW(eng.adapt_block(e), PreconditionError);
  Signal x(16, 0.2f), y(16);
  eng.process_block(x, y);
  eng.adapt_block(e);                             // armed: fine
  EXPECT_THROW(eng.adapt_block(e), PreconditionError);  // consumed
}

}  // namespace
}  // namespace mute::adaptive
