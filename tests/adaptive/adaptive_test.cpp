#include <cmath>

#include <gtest/gtest.h>

#include "adaptive/causal_wiener.hpp"
#include "adaptive/fxlms.hpp"
#include "adaptive/lms.hpp"
#include "adaptive/sysid.hpp"
#include "adaptive/wiener.hpp"
#include "audio/generators.hpp"
#include "common/math_utils.hpp"
#include "common/rng.hpp"
#include "dsp/fir_filter.hpp"
#include "dsp/signal_ops.hpp"

namespace mute::adaptive {
namespace {

TEST(Lms, IdentifiesFirSystem) {
  Rng rng(1);
  const std::vector<double> h = {0.5, -0.3, 0.2, 0.1};
  mute::dsp::FirFilter plant(h);
  AdaptiveFir fir(8);
  for (int i = 0; i < 20000; ++i) {
    const Sample x = static_cast<Sample>(rng.gaussian(0.5));
    fir.step(x, plant.process(x));
  }
  for (std::size_t k = 0; k < h.size(); ++k) {
    EXPECT_NEAR(fir.weights()[k], h[k], 1e-3);
  }
  for (std::size_t k = h.size(); k < 8; ++k) {
    EXPECT_NEAR(fir.weights()[k], 0.0, 1e-3);
  }
}

TEST(Lms, MisalignmentImprovesOverTime) {
  Rng rng(2);
  const std::vector<double> h = {1.0, 0.5, -0.25, 0.0};
  mute::dsp::FirFilter plant(h);
  AdaptiveFir fir(4);
  auto run = [&](int steps) {
    for (int i = 0; i < steps; ++i) {
      const Sample x = static_cast<Sample>(rng.gaussian(0.5));
      fir.step(x, plant.process(x));
    }
    return misalignment_db(fir.weights(), h);
  };
  const double early = run(200);
  const double late = run(20000);
  EXPECT_LT(late, early - 20.0);
}

TEST(Lms, NormalizationMakesStepScaleInvariant) {
  // NLMS converges at the same rate regardless of input scale.
  const std::vector<double> h = {0.7, -0.2};
  auto residual_after = [&](double scale) {
    Rng rng(3);
    mute::dsp::FirFilter plant(h);
    AdaptiveFir fir(4, {.mu = 0.2, .normalized = true});
    double err = 0.0;
    for (int i = 0; i < 3000; ++i) {
      const Sample x = static_cast<Sample>(rng.gaussian(scale));
      const Sample e = fir.step(x, plant.process(x));
      if (i > 2500) err += std::abs(static_cast<double>(e));
    }
    return err / scale;  // normalize error by scale for comparison
  };
  const double small = residual_after(0.01);
  const double large = residual_after(10.0);
  EXPECT_NEAR(small / large, 1.0, 0.2);
}

TEST(Lms, LeakageShrinksWeightsWithoutExcitation) {
  AdaptiveFir fir(2, {.mu = 0.5, .leakage = 0.01});
  std::vector<double> w = {1.0, 1.0};
  fir.set_weights(w);
  // Updates with zero input: gradient is zero but leakage decays weights.
  for (int i = 0; i < 1000; ++i) fir.step(0.0f, 0.0f);
  EXPECT_LT(fir.weights()[0], 0.01);
}

TEST(Lms, RejectsBadOptions) {
  EXPECT_THROW(AdaptiveFir(0), PreconditionError);
  EXPECT_THROW(AdaptiveFir(4, {.mu = -1.0}), PreconditionError);
  EXPECT_THROW(AdaptiveFir(4, {.leakage = 1.5}), PreconditionError);
}

TEST(SysId, IdentifySystemReportsQuality) {
  Rng rng(5);
  audio::WhiteNoiseSource noise(0.2, 5);
  const auto x = noise.generate(32000);
  mute::dsp::FirFilter plant({0.4, 0.3, -0.2, 0.1});
  Signal y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = plant.process(x[i]);
  const auto result = identify_system(x, y, 16);
  EXPECT_LT(result.final_error_db, -40.0);
  EXPECT_NEAR(result.impulse_response[0], 0.4, 1e-3);
}

TEST(SysId, CalibratePathDrivesPlantFunction) {
  const auto result = calibrate_path(
      [](std::span<const Sample> s) {
        Signal out(s.size(), 0.0f);
        for (std::size_t i = 1; i < s.size(); ++i) {
          // delay-1 gain 0.8
          out[i] = static_cast<Sample>(0.8 * static_cast<double>(s[i - 1]));
        }
        return out;
      },
      16000.0, 1.0, 8, 7);
  EXPECT_NEAR(result.impulse_response[1], 0.8, 1e-3);
  EXPECT_LT(result.final_error_db, -40.0);
}

TEST(Fxlms, CancelsWithPerfectLookahead) {
  Rng rng(11);
  std::vector<double> hse(8, 0.0);
  hse[2] = 1.0;
  FxlmsOptions opt;
  opt.causal_taps = 32;
  opt.noncausal_taps = 10;
  opt.mu = 0.5;
  FxlmsEngine eng(hse, opt);
  const int t_len = 60000;
  std::vector<float> n(t_len), y(t_len, 0.0f);
  for (auto& v : n) v = static_cast<float>(rng.gaussian(0.1));
  double err = 0.0;
  int count = 0;
  for (int t = 0; t < t_len; ++t) {
    const float x_adv = (t + 10 < t_len) ? n[t + 10] : 0.0f;
    y[t] = eng.step_output(x_adv);
    const float d = (t >= 10) ? n[t - 10] : 0.0f;
    const float a = (t >= 2) ? y[t - 2] : 0.0f;
    const float e = d + a;
    eng.adapt(e);
    if (t > t_len / 2) {
      err += static_cast<double>(e) * static_cast<double>(e);
      ++count;
    }
  }
  EXPECT_LT(10.0 * std::log10(err / count / 0.01), -60.0);
}

TEST(Fxlms, WeightOrderingNoncausalFirst) {
  std::vector<double> hse = {1.0};
  FxlmsOptions opt;
  opt.causal_taps = 4;
  opt.noncausal_taps = 2;
  FxlmsEngine eng(hse, opt);
  EXPECT_EQ(eng.total_taps(), 6u);
  EXPECT_EQ(eng.noncausal_taps(), 2u);
  std::vector<double> w = {1, 2, 3, 4, 5, 6};
  eng.set_weights(w);
  EXPECT_EQ(eng.weights()[0], 1.0);
}

TEST(Fxlms, ResetHistoryKeepsWeights) {
  std::vector<double> hse = {1.0};
  FxlmsEngine eng(hse, {.causal_taps = 4});
  eng.push_reference(1.0f);
  std::vector<double> w = {1, 2, 3, 4};
  eng.set_weights(w);
  eng.reset_history();
  EXPECT_EQ(eng.weights()[1], 2.0);
  EXPECT_FLOAT_EQ(eng.compute_antinoise(), 0.0f);  // history cleared
}

TEST(Fxlms, FullResetClearsWeights) {
  std::vector<double> hse = {1.0};
  FxlmsEngine eng(hse, {.causal_taps = 4});
  std::vector<double> w = {1, 2, 3, 4};
  eng.set_weights(w);
  eng.reset();
  for (double v : eng.weights()) EXPECT_EQ(v, 0.0);
}

TEST(Fxlms, SecondaryPathSwapWorks) {
  FxlmsEngine eng({1.0}, {.causal_taps = 4});
  eng.set_secondary_path({0.5, 0.5});
  EXPECT_EQ(eng.secondary_path().size(), 2u);
  EXPECT_THROW(eng.set_secondary_path({}), PreconditionError);
}

TEST(Fxlms, RetargetRemapsWeightsToTheNewWindow) {
  // Shrinking the non-causal window with a positive shift keeps the
  // causal tail intact: w_new[i] = w_old[i + shift]. Layout is
  // noncausal-first, so dropping two lookahead taps with shift = 2
  // discards exactly the two most-advanced weights.
  FxlmsOptions opt;
  opt.causal_taps = 3;
  opt.noncausal_taps = 4;
  FxlmsEngine eng({1.0}, opt);
  std::vector<double> w = {0, 1, 2, 3, 4, 5, 6};
  eng.set_weights(w);
  eng.retarget_noncausal(2, 2);
  EXPECT_EQ(eng.noncausal_taps(), 2u);
  EXPECT_EQ(eng.total_taps(), 5u);
  const std::vector<double> expect = {2, 3, 4, 5, 6};
  EXPECT_EQ(eng.weights(), expect);
}

TEST(Fxlms, RetargetGrowsWindowWithZeroFill) {
  // Growing the window with a negative shift leaves the old weights at
  // their same absolute time offsets and zero-fills the newly available
  // lookahead taps (out-of-range source indices read as silence).
  FxlmsOptions opt;
  opt.causal_taps = 2;
  opt.noncausal_taps = 2;
  FxlmsEngine eng({1.0}, opt);
  std::vector<double> w = {1, 2, 3, 4};
  eng.set_weights(w);
  eng.retarget_noncausal(4, -2);
  EXPECT_EQ(eng.noncausal_taps(), 4u);
  EXPECT_EQ(eng.total_taps(), 6u);
  const std::vector<double> expect = {0, 0, 1, 2, 3, 4};
  EXPECT_EQ(eng.weights(), expect);
}

TEST(Wiener, BoundIsTightForNoiselessLti) {
  Rng rng(13);
  Signal x(64000);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian(0.2));
  mute::dsp::FirFilter f({0.8, -0.4, 0.2});
  Signal d(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) d[i] = f.process(x[i]);
  const std::vector<double> hse = {1.0};
  const auto bound = wiener_bound(x, d, hse, 16000.0);
  // Noiseless LTI: coherence ~1, residual bound very low.
  double mean_coh = 0.0;
  for (double c : bound.coherence) mean_coh += c;
  mean_coh /= static_cast<double>(bound.coherence.size());
  EXPECT_GT(mean_coh, 0.95);
}

TEST(Wiener, RealizedFilterCancelsDeeply) {
  Rng rng(17);
  Signal x(64000);
  for (auto& v : x) v = static_cast<Sample>(rng.gaussian(0.2));
  mute::dsp::FirFilter f({0.8, -0.4, 0.2, 0.1});
  Signal d(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) d[i] = f.process(x[i]);
  const std::vector<double> hse = {1.0};
  const auto bound = wiener_bound(x, d, hse, 16000.0, 1024);
  const auto w = realize_wiener(bound, 0, 64);
  // e = d + w*x should be tiny.
  mute::dsp::FirFilter wf(w);
  double err = 0.0, sig = 0.0;
  for (std::size_t i = 1000; i < x.size(); ++i) {
    const double e = static_cast<double>(d[i]) +
                     static_cast<double>(wf.process(x[i]));
    err += e * e;
    sig += static_cast<double>(d[i]) * static_cast<double>(d[i]);
  }
  EXPECT_LT(10.0 * std::log10(err / sig), -30.0);
}

TEST(CausalWiener, SolveSpdSolvesKnownSystem) {
  // A = [[4,1],[1,3]], b = [1, 2] -> x = [1/11, 7/11].
  const auto x = solve_spd({4, 1, 1, 3}, {1, 2}, 2);
  EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-12);
  EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-12);
}

TEST(CausalWiener, SolveSpdRejectsIndefinite) {
  EXPECT_THROW(solve_spd({1, 2, 2, 1}, {1, 1}, 2), PreconditionError);
}

TEST(CausalWiener, FitCancelsCausalSystem) {
  Rng rng(19);
  Signal u(32000), d(32000);
  mute::dsp::FirFilter f({0.6, -0.3});
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = static_cast<Sample>(rng.gaussian(0.3));
    d[i] = f.process(u[i]);
  }
  const auto w = fit_causal_fir(u, d, 8);
  // d + w*u ~ 0 means w ~ -f.
  EXPECT_NEAR(w[0], -0.6, 1e-2);
  EXPECT_NEAR(w[1], 0.3, 1e-2);
}

TEST(CausalWiener, EffortPenaltyShrinksGain) {
  Rng rng(23);
  Signal u(32000), d(32000);
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = static_cast<Sample>(rng.gaussian(0.3));
    d[i] = static_cast<Sample>(-0.9 * static_cast<double>(u[i]));
  }
  const auto w_free = fit_causal_fir(u, d, 4);
  const auto w_pen = fit_causal_fir(u, d, 4, 1e-4, u, 4.0);
  EXPECT_NEAR(w_free[0], 0.9, 1e-2);
  EXPECT_LT(std::abs(w_pen[0]), std::abs(w_free[0]));
}

TEST(CausalWiener, RejectsShortRecord) {
  Signal u(10), d(10);
  EXPECT_THROW(fit_causal_fir(u, d, 8), PreconditionError);
}

// Property: more noncausal taps never hurt steady-state cancellation of a
// delayed-inverse problem (the LANC core claim, unit-scale version).
class LookaheadTapsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LookaheadTapsTest, CancellationImprovesWithN) {
  const std::size_t n_taps = GetParam();
  Rng rng(31);
  // Plant h_se = delayed delta; disturbance needs a non-causal inverse:
  // x is *late* relative to d by 6 samples unless N >= 6 covers it.
  std::vector<double> hse(4, 0.0);
  hse[1] = 1.0;
  FxlmsOptions opt;
  opt.causal_taps = 48;
  opt.noncausal_taps = n_taps;
  opt.mu = 0.4;
  FxlmsEngine eng(hse, opt);
  const int t_len = 50000;
  std::vector<float> src(t_len), y(t_len, 0.0f);
  for (auto& v : src) v = static_cast<float>(rng.gaussian(0.1));
  double err = 0.0;
  int count = 0;
  for (int t = 0; t < t_len; ++t) {
    // Reference advanced by N (what the relay provides).
    const int adv = t + static_cast<int>(n_taps);
    const float x_adv = (adv < t_len) ? src[adv] : 0.0f;
    y[t] = eng.step_output(x_adv);
    // Disturbance: src arrives at the ear NOW; anti-noise needs 7 samples
    // of future (6 ahead + 1 plant delay) to fully invert.
    const float d = (t >= 0) ? src[t] : 0.0f;
    const float a = (t >= 1) ? y[t - 1] : 0.0f;
    const float e = d + a;
    eng.adapt(e);
    if (t > t_len / 2) {
      err += static_cast<double>(e) * static_cast<double>(e);
      ++count;
    }
  }
  const double db = 10.0 * std::log10(err / count / 0.01);
  static double prev_db = 100.0;
  if (n_taps == 0) prev_db = 100.0;
  EXPECT_LE(db, prev_db + 1.0) << "N=" << n_taps;
  prev_db = db;
}

INSTANTIATE_TEST_SUITE_P(MoreTapsBetter, LookaheadTapsTest,
                         ::testing::Values(0, 1, 2, 4, 8));

}  // namespace
}  // namespace mute::adaptive

// -- appended coverage: ridge escalation on rank-deficient records --------
namespace mute::adaptive {
namespace {

TEST(CausalWiener, TonalRecordStillSolvable) {
  // A pure tone excites one eigen-direction only: the plain normal matrix
  // is singular, and the fit must escalate the ridge instead of throwing.
  const double fs = 16000.0;
  Signal u(32000), d(32000);
  for (std::size_t i = 0; i < u.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    u[i] = static_cast<Sample>(0.5 * std::sin(kTwoPi * 500.0 * t));
    d[i] = static_cast<Sample>(-0.4 * std::sin(kTwoPi * 500.0 * t));
  }
  const auto w = fit_causal_fir(u, d, 32);
  // Applying w to u should cancel d at the tone frequency.
  mute::dsp::FirFilter wf(w);
  double err = 0.0, sig = 0.0;
  for (std::size_t i = 1000; i < u.size(); ++i) {
    const double e = static_cast<double>(d[i]) +
                     static_cast<double>(wf.process(u[i]));
    err += e * e;
    sig += static_cast<double>(d[i]) * static_cast<double>(d[i]);
  }
  EXPECT_LT(10.0 * std::log10(err / sig), -20.0);
}

}  // namespace
}  // namespace mute::adaptive
