#include <cmath>

#include <gtest/gtest.h>

#include "acoustics/channel.hpp"
#include "acoustics/environment.hpp"
#include "acoustics/propagation.hpp"
#include "acoustics/room.hpp"
#include "acoustics/transducer.hpp"
#include "audio/generators.hpp"
#include "common/math_utils.hpp"
#include "dsp/signal_ops.hpp"

namespace mute::acoustics {
namespace {

constexpr double kFs = 16000.0;

TEST(Propagation, DistanceAndDelay) {
  const Point a{0, 0, 0}, b{3.4, 0, 0};
  EXPECT_NEAR(distance(a, b), 3.4, 1e-12);
  EXPECT_NEAR(acoustic_delay_s(a, b), 0.01, 1e-9);
  EXPECT_LT(rf_delay_s(a, b), 1e-7);
}

TEST(Propagation, LookaheadEquation4) {
  // Paper: (de - dr) = 1 m -> ~3 ms.
  EXPECT_NEAR(lookahead_s(1.0, 2.0), 1.0 / 340.0, 1e-12);
  EXPECT_LT(lookahead_s(3.0, 1.0), 0.0);  // relay farther -> negative
}

TEST(Propagation, SpreadingGainFloorsNearField) {
  EXPECT_NEAR(spreading_gain(2.0), 0.5, 1e-12);
  EXPECT_NEAR(spreading_gain(0.01), 10.0, 1e-12);  // floored at 0.1 m
}

TEST(Room, ContainsChecksBounds) {
  Room r = Room::office();
  EXPECT_TRUE(r.contains({1, 1, 1}));
  EXPECT_FALSE(r.contains({-1, 1, 1}));
  EXPECT_FALSE(r.contains({1, 1, 10}));
}

TEST(Rir, DirectPathArrivesAtGeometricDelay) {
  Room r = Room::anechoic();
  RirOptions opts;
  opts.sample_rate = kFs;
  const Point src{1, 2, 1.5}, rcv{3, 2, 1.5};
  const auto rir = image_source_rir(r, src, rcv, opts);
  // Strongest tap near distance/343*fs.
  std::size_t best = 0;
  for (std::size_t i = 1; i < rir.size(); ++i) {
    if (std::abs(rir[i]) > std::abs(rir[best])) best = i;
  }
  const double expected = 2.0 / r.speed_of_sound * kFs;
  EXPECT_NEAR(static_cast<double>(best), expected, 1.5);
}

TEST(Rir, AmplitudeFollowsSpreadingLoss) {
  Room r = Room::anechoic();
  RirOptions opts;
  opts.sample_rate = kFs;
  const Point src{1, 2.5, 1.5};
  const auto rir_near = image_source_rir(r, src, {2, 2.5, 1.5}, opts);
  const auto rir_far = image_source_rir(r, src, {5, 2.5, 1.5}, opts);
  auto peak_of = [](const std::vector<double>& h) {
    double p = 0;
    for (double v : h) p = std::max(p, std::abs(v));
    return p;
  };
  // 1 m vs 4 m: amplitude ratio ~4.
  EXPECT_NEAR(peak_of(rir_near) / peak_of(rir_far), 4.0, 0.6);
}

TEST(Rir, ReverberantRoomHasEnergyTail) {
  Room r = Room::office();
  RirOptions opts;
  opts.sample_rate = kFs;
  const auto rir = image_source_rir(r, {1, 2.5, 1.5}, {5, 2.5, 1.2}, opts);
  double early = 0.0, late = 0.0;
  for (std::size_t i = 0; i < 400; ++i) early += rir[i] * rir[i];
  for (std::size_t i = 400; i < rir.size(); ++i) late += rir[i] * rir[i];
  EXPECT_GT(late, 1e-4 * early);  // a real tail exists
  EXPECT_LT(late, early);         // but decays
}

TEST(Rir, HigherReflectivityMeansLongerRt60) {
  RirOptions opts;
  opts.sample_rate = kFs;
  opts.length = 4096;
  Room damped = Room::office();
  Room live = Room::office();
  live.reflection_x = live.reflection_y = 0.85;
  live.reflection_z = 0.8;
  live.max_order = 5;
  const Point src{1, 2.5, 1.5}, rcv{5, 2.5, 1.2};
  const double rt_damped =
      estimate_rt60(image_source_rir(damped, src, rcv, opts), kFs);
  const double rt_live =
      estimate_rt60(image_source_rir(live, src, rcv, opts), kFs);
  EXPECT_GT(rt_live, rt_damped);
}

TEST(Rir, RejectsOutsidePositions) {
  Room r = Room::office();
  RirOptions opts;
  EXPECT_THROW(image_source_rir(r, {-1, 0, 0}, {1, 1, 1}, opts),
               PreconditionError);
}

TEST(FreeField, SingleArrival) {
  RirOptions opts;
  opts.sample_rate = kFs;
  const auto ir = free_field_ir({0.5, 0.5, 0.5}, {1.5, 0.5, 0.5}, opts);
  double total = 0.0, peak_v = 0.0;
  for (double v : ir) {
    total += std::abs(v);
    peak_v = std::max(peak_v, std::abs(v));
  }
  // Essentially all energy in one band-limited impulse.
  EXPECT_LT(total, 3.0 * peak_v * 8.0);
}

TEST(Channel, StreamingMatchesOffline) {
  Room r = Room::office();
  RirOptions opts;
  opts.sample_rate = kFs;
  opts.length = 256;
  AcousticChannel ch(image_source_rir(r, {1, 2, 1}, {3, 2, 1}, opts), "t");
  audio::WhiteNoiseSource noise(0.1, 3);
  const auto x = noise.generate(1000);
  const auto offline = ch.apply(x);
  Signal streamed(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) streamed[i] = ch.process(x[i]);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(streamed[i], offline[i], 1e-4);
  }
}

TEST(Channel, DirectPathIndexFindsStrongestTap) {
  AcousticChannel ch({0.0, 0.1, 0.9, 0.2}, "t");
  EXPECT_EQ(ch.direct_path_index(), 2u);
}

TEST(Channel, ShiftIrDelaysTaps) {
  const std::vector<double> ir = {1.0, 0.5, 0.25};
  const auto shifted = shift_ir(ir, 1);
  ASSERT_EQ(shifted.size(), 3u);
  EXPECT_DOUBLE_EQ(shifted[0], 0.0);
  EXPECT_DOUBLE_EQ(shifted[1], 1.0);
  EXPECT_DOUBLE_EQ(shifted[2], 0.5);
}

TEST(Channel, CascadeEqualsConvolution) {
  const std::vector<double> a = {1.0, 0.5};
  const std::vector<double> b = {0.25, -0.25};
  const auto c = cascade_ir(a, b, 8);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[0], 0.25);
  EXPECT_DOUBLE_EQ(c[1], -0.125);
  EXPECT_DOUBLE_EQ(c[2], -0.125);
}

TEST(Transducer, CheapMicRollsOffLowFrequencies) {
  auto mic = Transducer::cheap_microphone(kFs, 1);
  EXPECT_LT(mic.response_magnitude(50.0, kFs), 0.3);
  EXPECT_NEAR(mic.response_magnitude(1000.0, kFs), 1.0, 0.1);
}

TEST(Transducer, PremiumIsFlatterAndQuieter) {
  auto cheap = Transducer::cheap_microphone(kFs, 1);
  auto premium = Transducer::premium_microphone(kFs, 1);
  EXPECT_GT(premium.response_magnitude(60.0, kFs),
            cheap.response_magnitude(60.0, kFs));
  EXPECT_LT(premium.self_noise_rms(), cheap.self_noise_rms());
}

TEST(Transducer, SelfNoisePresentOnSilence) {
  auto mic = Transducer::cheap_microphone(kFs, 5);
  Signal silence(8000, 0.0f);
  const auto out = mic.apply(silence);
  EXPECT_NEAR(mute::dsp::rms(out), mic.self_noise_rms(), 0.5 * mic.self_noise_rms());
}

TEST(Transducer, IdealIsTransparent) {
  auto t = Transducer::ideal(1);
  EXPECT_FLOAT_EQ(t.process(0.42f), 0.42f);
  EXPECT_DOUBLE_EQ(t.response_magnitude(123.0, kFs), 1.0);
}

TEST(Environment, PaperOfficeHasPositiveLookahead) {
  const auto scene = Scene::paper_office();
  const auto cs = build_channels(scene);
  EXPECT_GT(cs.lookahead_s, 5e-3);  // several ms as the paper promises
  EXPECT_GT(cs.direct_ne_samples, cs.direct_nr_samples);
  EXPECT_LT(cs.direct_se_samples, 5.0);  // speaker is centimeters away
}

TEST(Environment, ChannelsCarryEnergy) {
  const auto cs = build_channels(Scene::paper_office());
  EXPECT_GT(cs.h_nr.energy(), 0.0);
  EXPECT_GT(cs.h_ne.energy(), 0.0);
  EXPECT_GT(cs.h_se.energy(), cs.h_ne.energy());  // near-field is louder
}

class RirOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(RirOrderTest, EnergyGrowsWithImageOrder) {
  Room r = Room::office();
  r.max_order = GetParam();
  RirOptions opts;
  opts.sample_rate = kFs;
  const auto rir = image_source_rir(r, {1, 2.5, 1.5}, {5, 2.5, 1.2}, opts);
  double e = 0.0;
  for (double v : rir) e += v * v;
  static double prev_energy = 0.0;
  if (GetParam() == 0) prev_energy = 0.0;
  EXPECT_GE(e, prev_energy * 0.999);
  prev_energy = e;
}

INSTANTIATE_TEST_SUITE_P(Orders, RirOrderTest, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace mute::acoustics
