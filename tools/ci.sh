#!/usr/bin/env bash
# Local CI pipeline — the three gating jobs of .github/workflows/ci.yml
# (the workflow's extra failover-smoke job is reporting-only and runs the
# bench/failover table as a per-push artifact), runnable on any machine
# with the base toolchain:
#
#   1. plain    : dev preset build + full ctest
#   2. sanitize : asan-ubsan preset build + ctest -L sanitize
#   3. analyze  : tools/run_static_analysis.sh (clang-tidy or fallback)
#
# Usage: tools/ci.sh [plain|sanitize|analyze]...   (default: all three)
#
# Every ctest run carries --timeout 900: a hung test (deadlock, runaway
# convergence loop) fails after 15 minutes instead of wedging the job.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${CI_JOBS:-$(nproc)}"
cd "$ROOT"

run_plain() {
  echo "=== job: plain build + ctest ==="
  cmake --preset dev
  cmake --build --preset dev -j "$JOBS"
  ctest --preset dev -j "$JOBS" --timeout 900
}

run_sanitize() {
  echo "=== job: asan-ubsan build + ctest -L sanitize ==="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$JOBS"
  ctest --preset asan-ubsan -j "$JOBS" --timeout 900
}

run_analyze() {
  echo "=== job: static analysis ==="
  tools/run_static_analysis.sh
}

if [[ $# -eq 0 ]]; then
  set -- plain sanitize analyze
fi

for job in "$@"; do
  case "$job" in
    plain) run_plain ;;
    sanitize) run_sanitize ;;
    analyze) run_analyze ;;
    *)
      echo "unknown job: $job (expected plain|sanitize|analyze)" >&2
      exit 2
      ;;
  esac
done

echo "=== CI pipeline passed ==="
