#!/usr/bin/env bash
# Local CI pipeline — the gating jobs of .github/workflows/ci.yml (the
# workflow's extra failover-smoke job is reporting-only and runs the
# bench/failover table as a per-push artifact), runnable on any machine
# with the base toolchain:
#
#   1. plain    : dev preset build + full ctest
#   2. sanitize : asan-ubsan preset build + ctest -L sanitize
#   3. tsan     : tsan preset build + ctest -L sanitize — the race gate for
#                 sim/parallel_sweep and the work-stealing pool
#   4. analyze  : tools/run_static_analysis.sh (clang-tidy or fallback,
#                 plus the rt-lint RT-safety gate)
#   5. perf     : micro_dsp hot-path benches + tools/bench_gate.py against
#                 the committed BENCH_baseline.json (DESIGN.md §10)
#   6. soak-smoke : bench/chaos_soak on a short multi-seed schedule — the
#                 mesh-resilience invariants (never louder than passive,
#                 bounded re-acquisition, allocation-free steady state)
#                 under randomized fault chaos; writes soak-report.json
#                 (DESIGN.md §12)
#   7. fleet-smoke : bench/fleet_soak on a small churned tenant fleet —
#                 per-tenant never-louder verdicts plus the zero
#                 worker-lane heap traffic contract of the fleet runtime;
#                 writes fleet-soak-report.json (DESIGN.md §14)
#
# `rt-lint` is also available standalone (subset of analyze): it re-runs
# only the static RT-safety gate, seconds instead of a full tidy sweep.
#
# Usage: tools/ci.sh [plain|sanitize|tsan|analyze|rt-lint|perf|soak-smoke|
#                     fleet-smoke]...
#        (default: plain sanitize tsan analyze perf soak-smoke fleet-smoke)
#
# Every ctest run carries --timeout 900: a hung test (deadlock, runaway
# convergence loop) fails after 15 minutes instead of wedging the job.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${CI_JOBS:-$(nproc)}"
cd "$ROOT"

run_plain() {
  echo "=== job: plain build + ctest ==="
  cmake --preset dev
  cmake --build --preset dev -j "$JOBS"
  ctest --preset dev -j "$JOBS" --timeout 900
}

run_sanitize() {
  echo "=== job: asan-ubsan build + ctest -L sanitize ==="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$JOBS"
  ctest --preset asan-ubsan -j "$JOBS" --timeout 900
}

run_tsan() {
  echo "=== job: tsan build + ctest -L sanitize ==="
  cmake --preset tsan
  cmake --build --preset tsan -j "$JOBS"
  ctest --preset tsan -j "$JOBS" --timeout 900
}

run_analyze() {
  echo "=== job: static analysis (incl. rt-lint) ==="
  tools/run_static_analysis.sh
}

run_rt_lint() {
  echo "=== job: rt-lint (static RT-safety gate) ==="
  tools/run_static_analysis.sh --rt-lint-only
}

# Filter shared with the perf-smoke workflow job: calibration + every
# benchmark bench_gate.py pins (plus their other tap sizes, informational).
BENCH_FILTER='BM_Calibration|BM_Kernel|BM_FirFilterPerSample|BM_FxlmsCycle|BM_FdLancBlock|BM_AdaptiveFirStep|BM_ShadowObserve|BM_FleetThroughput'

run_perf() {
  echo "=== job: perf smoke (bench_gate) ==="
  cmake --preset dev
  cmake --build --preset dev -j "$JOBS" --target micro_dsp
  ./build-dev/bench/micro_dsp \
    --benchmark_filter="$BENCH_FILTER" \
    --benchmark_min_time=0.3 \
    --json bench-current.json
  python3 tools/bench_gate.py bench-current.json
}

# Short but real chaos: 3 seeds of randomized fault episodes on a 4-relay
# mesh (~30 s on one core, seeds run in parallel where cores allow). Exits
# non-zero on any invariant violation; the JSON verdict is the CI artifact.
run_soak_smoke() {
  echo "=== job: soak smoke (chaos invariants) ==="
  cmake --preset dev
  cmake --build --preset dev -j "$JOBS" --target chaos_soak
  ./build-dev/bench/chaos_soak \
    --relays 4 --duration 8 --seeds 3 --json soak-report.json
}

# Small but real fleet churn: mixed profiles (one with a scripted relay
# dropout), admit/drain rounds, per-tenant never-louder verdicts, and the
# zero worker-lane heap allocation contract. Exits non-zero on any
# violation; the JSON verdict is the CI artifact.
run_fleet_smoke() {
  echo "=== job: fleet smoke (multi-tenant runtime invariants) ==="
  cmake --preset dev
  cmake --build --preset dev -j "$JOBS" --target fleet_soak
  ./build-dev/bench/fleet_soak \
    --devices 64 --sim-seconds 3 --json fleet-soak-report.json
}

if [[ $# -eq 0 ]]; then
  set -- plain sanitize tsan analyze perf soak-smoke fleet-smoke
fi

for job in "$@"; do
  case "$job" in
    plain) run_plain ;;
    sanitize) run_sanitize ;;
    tsan) run_tsan ;;
    analyze) run_analyze ;;
    rt-lint) run_rt_lint ;;
    perf) run_perf ;;
    soak-smoke) run_soak_smoke ;;
    fleet-smoke) run_fleet_smoke ;;
    *)
      echo "unknown job: $job" \
        "(expected plain|sanitize|tsan|analyze|rt-lint|perf|soak-smoke|" \
        "fleet-smoke)" >&2
      exit 2
      ;;
  esac
done

echo "=== CI pipeline passed ==="
