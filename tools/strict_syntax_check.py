#!/usr/bin/env python3
"""Strict-warning fallback for toolchains without clang-tidy.

Re-runs every translation unit from a CMake compilation database with
-fsyntax-only and an extended warning set promoted to errors. The extra
warnings go beyond the project's always-on set (mute_warnings) and cover
the same bug classes the .clang-tidy config targets: slicing destructors,
hidden virtual overloads, const-stripping casts, and preprocessor typos.

Usage: strict_syntax_check.py <compile_commands.json> [jobs]
"""

import concurrent.futures
import json
import shlex
import subprocess
import sys

# Promoted-to-error additions on top of the flags already present in the
# compile command (which include -Wall -Wextra -Wpedantic -Wshadow
# -Wconversion -Wdouble-promotion -Wold-style-cast from mute_warnings).
EXTRA_FLAGS = [
    "-fsyntax-only",
    "-Werror",
    "-Wnon-virtual-dtor",
    "-Woverloaded-virtual",
    "-Wcast-qual",
    "-Wundef",
    "-Wextra-semi",
    "-Wvla",
]


def strip_output_args(argv):
    """Drop -o/-c and the output path so the command is re-runnable."""
    out = []
    skip = False
    for arg in argv:
        if skip:
            skip = False
            continue
        if arg == "-o":
            skip = True
            continue
        if arg == "-c":
            continue
        out.append(arg)
    return out


def check_entry(entry):
    argv = strip_output_args(shlex.split(entry["command"])) + EXTRA_FLAGS
    proc = subprocess.run(
        argv,
        cwd=entry["directory"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return entry["file"], proc.returncode, proc.stdout


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as fh:
        db = json.load(fh)
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for file, rc, output in pool.map(check_entry, db):
            if rc != 0:
                failures += 1
                print(f"FAIL {file}")
                print(output)
    print(f"strict syntax check: {len(db)} translation units, "
          f"{failures} failures")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
