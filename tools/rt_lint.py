#!/usr/bin/env python3
"""rt-lint: static real-time-safety gate for the per-sample audio path.

Walks the call graph from the declared real-time roots (functions annotated
MUTE_RT_SAFE — see src/common/rt_annotations.hpp) and fails when anything
reachable can allocate, lock, throw, block on I/O, or call a banned API.
This turns the RT contract that RtAllocationGuard enforces dynamically (on
whatever paths the tests happen to exercise) into a whole-call-graph
property checked on every CI run (DESIGN.md §11).

Two modes, mirroring tools/run_static_analysis.sh:

  clang  — libclang (python `clang.cindex`) over the compilation database:
           precise AST call graph, annotations read from
           [[clang::annotate]] attributes, overloads resolved exactly.
  regex  — pure-Python fallback for toolchains without libclang: a
           length-preserving comment/string stripper, a scope-tracking
           function extractor, and name-based call resolution. Ambiguous
           member calls traverse only RT-annotated candidates (the
           precision limit of this mode; the ambiguity is listed in the
           report so it is visible, and the libclang mode closes it).

Both modes share the deny-list, the traversal, the allow-list and the
report format, and both exit non-zero on any violation, so
`rt_lint.py && ...` is a valid gate either way.

Deny-list (construct ids as they appear in reports / the allow-list):

  operator-new      new expressions (any form, including placement)
  malloc-family     malloc / calloc / realloc / aligned_alloc / strdup
  free              free()
  throw             throw expressions
  lock              std::mutex & friends, .lock()/.unlock()/.try_lock()
  blocking-io       iostream objects, printf family, file APIs, sleeps
  string-build      stringstream family, std::to_string
  std-rotate        std::rotate (banned from per-sample code since PR 4;
                    use dsp::RingHistory / FrameHistory)
  container-growth  push_back / emplace* / insert / resize / reserve /
                    assign / append / shrink_to_fit member calls
  rt-unsafe-call    a call to a function annotated MUTE_RT_UNSAFE

Escape hatches, in order of preference:
  1. MUTE_RT_ESCAPE("reason") on the callee — stops traversal there; the
     reason is surfaced in the report.
  2. An allow-list entry (tools/rt_lint_allow.txt) naming the exact
     (function, construct) pair WITH a justification — for constructs
     inside a function that is otherwise on the RT surface (e.g. an
     amortized append into reserve()d capacity). Entries without a
     justification fail the run.

Usage:
  rt_lint.py [--mode auto|clang|regex] [--src DIR ...] [--compdb FILE]
             [--allow FILE] [--report FILE] [--no-require-roots]
             [--strict-allow] [--verbose]

Exit codes: 0 clean, 1 violations / missing roots / bad allow-list,
2 usage or environment error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from collections import deque

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# --------------------------------------------------------------------------
# Deny-list. Patterns run over comment/string-stripped function bodies in
# regex mode; the clang mode maps AST nodes onto the same construct ids.
# --------------------------------------------------------------------------

BANNED = [
    ("operator-new", r"\bnew\b"),
    ("malloc-family",
     r"\b(?:malloc|calloc|realloc|aligned_alloc|posix_memalign|strdup)\s*\("),
    ("free", r"\bfree\s*\("),
    ("throw", r"\bthrow\b"),
    ("lock",
     r"\b(?:mutex|recursive_mutex|timed_mutex|lock_guard|unique_lock|"
     r"scoped_lock|shared_lock|condition_variable)\b"
     r"|(?:\.|->)\s*(?:lock|unlock|try_lock)\s*\("),
    ("blocking-io",
     r"\b(?:cout|cerr|clog|printf|fprintf|sprintf|snprintf|puts|fputs|"
     r"fwrite|fread|fopen|fclose|getline|system|sleep_for|sleep_until)\b"
     r"|\b[io]?fstream\b"),
    ("string-build",
     r"\b(?:stringstream|ostringstream|istringstream|to_string)\b"),
    ("std-rotate", r"\brotate\s*\("),
    ("container-growth",
     r"(?:\.|->)\s*(?:push_back|emplace_back|push_front|emplace_front|"
     r"resize|reserve|insert|emplace|assign|append|shrink_to_fit)\s*\("),
]

# Per-sample entry points that MUST exist and carry MUTE_RT_SAFE; the gate
# fails if one goes missing or loses its annotation (drift protection).
# Matched as qualified-name suffixes.
REQUIRED_ROOTS = [
    "mute::core::MuteDevice::tick",
    "mute::core::LancController::tick",
    "mute::core::LancController::observe_error",
    "mute::core::LinkMonitor::process",
    "mute::adaptive::FxlmsEngine::push_reference",
    "mute::adaptive::FxlmsEngine::compute_antinoise",
    "mute::adaptive::FxlmsEngine::adapt",
    "mute::adaptive::FxlmsEngine::step_output",
    "mute::adaptive::MultiFxlmsEngine::push_references",
    "mute::adaptive::MultiFxlmsEngine::compute_antinoise",
    "mute::adaptive::MultiFxlmsEngine::adapt",
    "mute::adaptive::AdaptiveFir::predict",
    "mute::adaptive::AdaptiveFir::update",
    "mute::adaptive::FdFxlmsEngine::process_block",
    "mute::adaptive::FdFxlmsEngine::adapt_block",
    "mute::adaptive::BlockFdaf::step_block",
    "mute::dsp::FirFilter::process",
    "mute::dsp::Biquad::process",
    "mute::dsp::DelayLine::process",
    "mute::dsp::RingHistory::push",
    "mute::dsp::FrameHistory::push",
    "mute::dsp::kernels::dot",
    "mute::dsp::kernels::energy",
    "mute::dsp::kernels::axpy_leaky_norm",
    "mute::dsp::kernels::scaled_accumulate",
    "mute::dsp::kernels::cmul_accumulate",
    "mute::dsp::kernels::cmul_conj_scaled",
    "mute::dsp::kernels::magsq_accumulate",
    "mute::dsp::kernels::magsq_update",
    "mute::dsp::kernels::window_into_complex",
    "mute::rf::FaultInjector::process",
    "mute::core::ShadowFilter::observe",
    "mute::core::ShadowFilter::track",
    "mute::rf::SpectrumPlanner::note_adverse",
    "mute::rf::SpectrumPlanner::note_clean",
    "mute::rf::SpectrumPlanner::plan",
    "mute::sim::FleetRuntime::process_tenant_block",
    "mute::MonotonicArena::allocate",
]

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "catch", "sizeof", "alignof",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "new", "delete", "throw", "case", "default", "do", "else", "goto",
    "template", "typename", "using", "typedef", "static_assert", "decltype",
    "noexcept", "alignas", "co_return", "co_await", "co_yield", "asm",
    "requires", "operator", "and", "or", "not",
}


# --------------------------------------------------------------------------
# Source model shared by both modes.
# --------------------------------------------------------------------------

class Fn:
    """One function (all overloads of one qualified name merged)."""

    __slots__ = ("qname", "simple", "annotations", "escape_reason",
                 "bodies", "file", "line")

    def __init__(self, qname, simple, file, line):
        self.qname = qname
        self.simple = simple
        self.file = file
        self.line = line
        self.annotations = set()    # subset of {safe, unsafe, escape}
        self.escape_reason = None
        self.bodies = []            # (stripped, file, first_line)


class Model:
    def __init__(self):
        self.fns = {}           # qname -> Fn
        self.by_simple = {}     # simple -> [qname]

    def get(self, qname, simple, file, line):
        fn = self.fns.get(qname)
        if fn is None:
            fn = Fn(qname, simple, file, line)
            self.fns[qname] = fn
            self.by_simple.setdefault(simple, []).append(qname)
        return fn

    def resolve(self, name):
        """Resolve a (possibly qualified) callee name to Fn qnames."""
        name = re.sub(r"\s+", "", name)
        if "::" in name:
            if name.split("::", 1)[0] == "std":
                return []
            if name in self.fns:
                return [name]
            suffix = "::" + name
            return [q for q in self.fns if q.endswith(suffix)]
        return list(self.by_simple.get(name, []))


# --------------------------------------------------------------------------
# Regex mode: length-preserving stripper + scope-tracking extractor.
# --------------------------------------------------------------------------

def strip_code(text):
    """Blank comments, string/char literal contents, and preprocessor
    lines, preserving length and line structure so offsets map 1:1."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c in "\"'":
            q = c
            j = i + 1
            while j < n and text[j] != q:
                j = j + 2 if text[j] == "\\" else j + 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = min(j, n - 1) + 1
        elif c == "#" and (i == 0 or text[i - 1] == "\n"):
            # Preprocessor directive, including \-continuations.
            j = i
            while j < n:
                e = text.find("\n", j)
                e = n if e < 0 else e
                if text[e - 1] == "\\" if e > 0 else False:
                    j = e + 1
                    continue
                j = e
                break
            for k in range(i, j):
                if out[k] != "\n":
                    out[k] = " "
            i = j
        else:
            i += 1
    return "".join(out)


def match_brace(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


ANNOT_RE = re.compile(r"\bMUTE_RT_(SAFE|UNSAFE|ESCAPE)\b")
NS_RE = re.compile(r"\bnamespace\s+([A-Za-z_][\w:]*)?\s*$")
CLASS_RE = re.compile(
    r"\b(?:class|struct|union)\s+(?:\[\[[^\]]*\]\]\s*)?(?:alignas\s*\([^)]*\)\s*)?"
    r"([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{;()]*)?$")
NAME_BEFORE_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*)\s*$")
OPERATOR_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*operator\s*"
    r"(?:[-+*/%^&|~!=<>]+|\(\s*\)|\[\s*\]))\s*$")


def head_annotations(stripped_head, orig_head):
    ann, reason = set(), None
    for m in ANNOT_RE.finditer(stripped_head):
        kind = m.group(1)
        if kind == "SAFE":
            ann.add("safe")
        elif kind == "UNSAFE":
            ann.add("unsafe")
        else:
            ann.add("escape")
            rm = re.search(r'MUTE_RT_ESCAPE\s*\(\s*"((?:[^"\\]|\\.)*)"',
                           orig_head[m.start():])
            if rm:
                reason = rm.group(1)
    return ann, reason


def clean_head(head):
    """Remove annotations/attributes/template prefixes so declarator
    extraction sees only the declaration proper."""
    h = re.sub(r"MUTE_RT_ESCAPE\s*\([^)]*\)", " ", head)
    h = re.sub(r"\bMUTE_RT_SAFE\b|\bMUTE_RT_UNSAFE\b", " ", h)
    h = re.sub(r"\[\[[^\]]*\]\]", " ", h)
    h = re.sub(r"\btemplate\s*<[^<>]*(?:<[^<>]*>[^<>]*)*>", " ", h)
    return h


def paren_groups(text):
    """Top-level (start, end) parenthesis groups."""
    groups, depth, start = [], 0, -1
    for i, c in enumerate(text):
        if c == "(":
            if depth == 0:
                start = i
            depth += 1
        elif c == ")" and depth > 0:
            depth -= 1
            if depth == 0:
                groups.append((start, i))
    return groups


def declarator_name(head):
    """Extract the function declarator name from a statement head, or None
    when the head is not a function declaration/definition."""
    h = clean_head(head)
    groups = paren_groups(h)
    if not groups:
        return None
    # A top-level '=' before the first group means an initializer, not a
    # declaration ('auto f = ...', 'static const x = foo(...)').
    before_first = h[:groups[0][0]]
    if re.search(r"(?<![<>=!+\-*/%&|^])=(?!=)", before_first):
        return None
    for gi, (s, _e) in enumerate(groups):
        pre = h[:s]
        om = OPERATOR_RE.search(pre)
        if om:
            return re.sub(r"\s+", "", om.group(1))
        nm = NAME_BEFORE_RE.search(pre)
        if not nm:
            continue
        name = re.sub(r"\s+", "", nm.group(1))
        last = name.rsplit("::", 1)[-1]
        if last in CONTROL_KEYWORDS:
            if last == "operator" and gi + 1 < len(groups):
                return name + "()"   # operator() — params are next group
            continue
        return name
    return None


def scan_source(model, path, text):
    stripped = strip_code(text)
    scope = []   # (kind, name) with kind in {ns, cls, block}
    i, head_start, n = 0, 0, len(stripped)

    def qualify(name):
        parts = [nm for kind, nm in scope if kind in ("ns", "cls") and nm]
        return "::".join(parts + [name]) if parts else name

    def record(name, ann, reason, body, body_line, line):
        qname = qualify(name)
        simple = name.rsplit("::", 1)[-1]
        fn = model.get(qname, simple, os.path.relpath(path, REPO), line)
        fn.annotations |= ann
        if reason and not fn.escape_reason:
            fn.escape_reason = reason
        if body is not None:
            fn.bodies.append((body, os.path.relpath(path, REPO), body_line))

    while i < n:
        c = stripped[i]
        if c == ";":
            head = stripped[head_start:i]
            if ANNOT_RE.search(head):
                name = declarator_name(head)
                if name:
                    ann, reason = head_annotations(head, text[head_start:i])
                    line = text.count("\n", 0, head_start) + 1
                    record(name, ann, reason, None, 0, line)
            head_start = i + 1
            i += 1
        elif c == "}":
            if scope:
                scope.pop()
            head_start = i + 1
            i += 1
        elif c == "{":
            head = stripped[head_start:i]
            h = head.strip()
            nsm = NS_RE.search(h)
            clm = CLASS_RE.search(h) if not nsm else None
            name = None
            if not nsm and not clm and "enum" not in h.split():
                name = declarator_name(head)
            if nsm:
                scope.append(("ns", nsm.group(1) or ""))
                head_start = i + 1
                i += 1
            elif clm:
                scope.append(("cls", clm.group(1)))
                head_start = i + 1
                i += 1
            elif name:
                end = match_brace(stripped, i)
                ann, reason = head_annotations(head, text[head_start:i])
                line = text.count("\n", 0, head_start) + 1
                body_line = text.count("\n", 0, i) + 1
                record(name, ann, reason, stripped[i + 1:end],
                       body_line, line)
                head_start = end + 1
                i = end + 1
            else:
                scope.append(("block", ""))
                head_start = i + 1
                i += 1
        else:
            i += 1


CALL_RE = re.compile(r"(?<![.\w>:])((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*\(")
MEMBER_RE = re.compile(r"(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")

# Member names the deny-list already bans textually (container-growth).
# Resolving them to in-repo functions of the same name (RingHistory::assign
# vs std::vector::assign) would add false call-graph edges; the textual hit
# is the enforcement for these.
DENY_MEMBER_NAMES = {
    "push_back", "emplace_back", "push_front", "emplace_front", "resize",
    "reserve", "insert", "emplace", "assign", "append", "shrink_to_fit",
    "lock", "unlock", "try_lock", "rotate",
}


def body_calls(body):
    """(plain_or_qualified, is_member) callee names found in a body."""
    calls = set()
    for m in CALL_RE.finditer(body):
        name = re.sub(r"\s+", "", m.group(1))
        last = name.rsplit("::", 1)[-1]
        if last in CONTROL_KEYWORDS or last.startswith("MUTE_"):
            continue
        calls.add((name, False))
    for m in MEMBER_RE.finditer(body):
        name = m.group(1)
        if name not in CONTROL_KEYWORDS and name not in DENY_MEMBER_NAMES:
            calls.add((name, True))
    return calls


def build_model_regex(src_dirs, extra_files):
    model = Model()
    files = list(extra_files)
    for d in src_dirs:
        for root, _dirs, names in os.walk(d):
            for nm in sorted(names):
                if nm.endswith((".hpp", ".cpp", ".h", ".cc")):
                    files.append(os.path.join(root, nm))
    for path in files:
        with open(path, encoding="utf-8", errors="replace") as fh:
            scan_source(model, path, fh.read())
    return model


# --------------------------------------------------------------------------
# clang mode: same model built from libclang cursors.
# --------------------------------------------------------------------------

def build_model_clang(compdb_path, src_dirs, extra_files):
    import clang.cindex as ci   # noqa: import guarded by caller

    index = ci.Index.create()
    model = Model()
    roots = [os.path.abspath(d) for d in src_dirs]

    def in_scope(path):
        ap = os.path.abspath(path)
        return any(ap.startswith(r + os.sep) or ap == r for r in roots) or \
            ap in {os.path.abspath(f) for f in extra_files}

    def qname_of(cursor):
        parts = []
        c = cursor
        while c is not None and c.kind != ci.CursorKind.TRANSLATION_UNIT:
            if c.spelling:
                parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    entries = []
    if compdb_path and os.path.exists(compdb_path):
        db = ci.CompilationDatabase.fromDirectory(
            os.path.dirname(os.path.abspath(compdb_path)))
        for cmd in db.getAllCompileCommands():
            if in_scope(cmd.filename):
                args = [a for a in list(cmd.arguments)[1:]
                        if a not in ("-c", cmd.filename)]
                entries.append((cmd.filename, args))
    else:
        inc = ["-I" + os.path.join(REPO, "src"), "-std=c++20"]
        for f in extra_files:
            entries.append((f, inc))
        for d in src_dirs:
            for root, _dirs, names in os.walk(d):
                for nm in sorted(names):
                    if nm.endswith(".cpp"):
                        entries.append((os.path.join(root, nm), inc))

    FN_KINDS = {ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR,
                ci.CursorKind.FUNCTION_TEMPLATE}
    edges = {}

    def visit_fn(cursor, tu_file):
        qname = qname_of(cursor)
        simple = cursor.spelling
        fn = model.get(qname, simple, os.path.relpath(tu_file, REPO),
                       cursor.location.line)
        for ch in cursor.get_children():
            if ch.kind == ci.CursorKind.ANNOTATE_ATTR:
                sp = ch.spelling or ""
                if sp == "mute::rt_safe":
                    fn.annotations.add("safe")
                elif sp == "mute::rt_unsafe":
                    fn.annotations.add("unsafe")
                elif sp.startswith("mute::rt_escape:"):
                    fn.annotations.add("escape")
                    fn.escape_reason = sp.split(":", 2)[-1]
        if not cursor.is_definition():
            return
        hits, calls = [], set()

        def walk(c):
            k = c.kind
            if k == ci.CursorKind.CXX_NEW_EXPR:
                hits.append(("operator-new", c.location.line, "new"))
            elif k == ci.CursorKind.CXX_THROW_EXPR:
                hits.append(("throw", c.location.line, "throw"))
            elif k == ci.CursorKind.CALL_EXPR and c.referenced is not None:
                ref = c.referenced
                rq = qname_of(ref)
                rs = ref.spelling
                if rs in ("malloc", "calloc", "realloc", "aligned_alloc",
                          "posix_memalign", "strdup"):
                    hits.append(("malloc-family", c.location.line, rs))
                elif rs == "free":
                    hits.append(("free", c.location.line, rs))
                elif rq == "std::rotate":
                    hits.append(("std-rotate", c.location.line, rq))
                elif rs in ("lock", "unlock", "try_lock") and \
                        "mutex" in rq:
                    hits.append(("lock", c.location.line, rq))
                elif rs in ("push_back", "emplace_back", "push_front",
                            "emplace_front", "resize", "reserve", "insert",
                            "emplace", "assign", "append",
                            "shrink_to_fit") and rq.startswith("std::"):
                    hits.append(("container-growth", c.location.line, rq))
                elif rq.startswith(("std::basic_ostream", "std::basic_istream",
                                    "std::basic_fstream")):
                    hits.append(("blocking-io", c.location.line, rq))
                elif not rq.startswith("std::"):
                    calls.add((rq, False))
            for sub in c.get_children():
                walk(sub)

        for ch in cursor.get_children():
            walk(ch)
        fn.bodies.append(("", os.path.relpath(tu_file, REPO),
                          cursor.location.line))
        node = edges.setdefault(qname, {"hits": [], "calls": set()})
        node["hits"].extend(hits)
        node["calls"] |= calls

    def visit(cursor, tu_file):
        for ch in cursor.get_children():
            loc = ch.location.file
            if loc is not None and not in_scope(loc.name):
                continue
            if ch.kind in FN_KINDS:
                visit_fn(ch, loc.name if loc else tu_file)
            visit(ch, tu_file)

    for fname, args in entries:
        tu = index.parse(fname, args=args)
        visit(tu.cursor, fname)
    return model, edges


# --------------------------------------------------------------------------
# Allow-list.
# --------------------------------------------------------------------------

def load_allowlist(path):
    """Entries: (qname-or-suffix, construct, justification). Returns
    (entries, errors)."""
    entries, errors = [], []
    if not path or not os.path.exists(path):
        return entries, errors
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = [p.strip() for p in line.split("|")]
            if len(parts) != 3 or not all(parts):
                errors.append(
                    f"{path}:{lineno}: allow-list entry needs "
                    f"'function | construct | justification': {line!r}")
                continue
            entries.append({"function": parts[0], "construct": parts[1],
                            "justification": parts[2], "used": False,
                            "line": lineno})
    return entries, errors


def allowed(entries, qname, construct):
    for e in entries:
        if e["construct"] != construct:
            continue
        f = e["function"]
        if qname == f or qname.endswith("::" + f):
            e["used"] = True
            return True
    return False


# --------------------------------------------------------------------------
# Traversal (shared by both modes).
# --------------------------------------------------------------------------

def traverse(model, allow_entries, edges=None, verbose=False):
    roots = sorted(q for q, fn in model.fns.items()
                   if "safe" in fn.annotations)
    violations, escapes, ambiguous = [], [], []
    seen = set(roots)
    work = deque(roots)
    order = []
    reached_via = {}    # qname -> first caller that enqueued it

    def scan_regex_bodies(fn):
        for body, file, line0 in fn.bodies:
            for construct, pattern in BANNED:
                for m in re.finditer(pattern, body):
                    if allowed(allow_entries, fn.qname, construct):
                        continue
                    line = line0 + body.count("\n", 0, m.start())
                    snippet = body[max(0, m.start() - 20):m.end() + 20]
                    violations.append({
                        "function": fn.qname, "construct": construct,
                        "file": file, "line": line,
                        "detail": " ".join(snippet.split()),
                    })

    def scan_clang_hits(fn):
        node = edges.get(fn.qname, {"hits": [], "calls": set()})
        for construct, line, detail in node["hits"]:
            if allowed(allow_entries, fn.qname, construct):
                continue
            violations.append({
                "function": fn.qname, "construct": construct,
                "file": fn.file, "line": line, "detail": detail,
            })
        return node["calls"]

    while work:
        qname = work.popleft()
        fn = model.fns[qname]
        order.append(qname)
        if "escape" in fn.annotations:
            escapes.append({"function": qname,
                            "reason": fn.escape_reason or "(no reason)"})
            continue
        if "unsafe" in fn.annotations:
            violations.append({
                "function": qname, "construct": "rt-unsafe-call",
                "file": fn.file, "line": fn.line,
                "detail": "MUTE_RT_UNSAFE function reachable from RT roots",
            })
            continue

        if edges is not None:
            calls = scan_clang_hits(fn)
        else:
            scan_regex_bodies(fn)
            calls = set()
            for body, _file, _line in fn.bodies:
                calls |= body_calls(body)

        for name, _is_member in sorted(calls):
            targets = model.resolve(name)
            if not targets:
                continue
            if len(targets) > 1:
                annotated = [t for t in targets
                             if model.fns[t].annotations]
                if annotated != targets:
                    skipped = sorted(set(targets) - set(annotated))
                    ambiguous.append({
                        "caller": qname, "callee": name,
                        "candidates": len(targets),
                        "skipped": skipped,
                    })
                targets = annotated if annotated else targets[:0] or targets
                if not annotated:
                    # No annotation anywhere: traverse the whole union —
                    # over-approximate rather than silently skip.
                    targets = model.resolve(name)
            for t in targets:
                if t not in seen:
                    seen.add(t)
                    reached_via[t] = qname
                    work.append(t)
        if verbose:
            print(f"  walked {qname}")

    return roots, order, violations, escapes, ambiguous, reached_via


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--mode", choices=["auto", "clang", "regex"],
                    default="auto")
    ap.add_argument("--src", action="append", default=[],
                    help="source dir to scan (default: <repo>/src)")
    ap.add_argument("--file", action="append", default=[],
                    help="additional individual source file to scan")
    ap.add_argument("--compdb",
                    default=os.path.join(REPO, "build-tidy",
                                         "compile_commands.json"),
                    help="compilation database for clang mode")
    ap.add_argument("--allow",
                    default=os.path.join(REPO, "tools", "rt_lint_allow.txt"),
                    help="allow-list file ('' disables)")
    ap.add_argument("--report", default="", help="write JSON report here")
    ap.add_argument("--no-require-roots", action="store_true",
                    help="skip the REQUIRED_ROOTS presence check "
                         "(fixture/self-test runs)")
    ap.add_argument("--strict-allow", action="store_true",
                    help="fail on unused allow-list entries")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()

    src_dirs = args.src or [os.path.join(REPO, "src")]
    for d in src_dirs:
        if not os.path.isdir(d):
            print(f"rt-lint: source dir not found: {d}", file=sys.stderr)
            return 2

    mode = args.mode
    edges = None
    if mode in ("auto", "clang"):
        try:
            import clang.cindex  # noqa: F401
            model, edges = build_model_clang(args.compdb, src_dirs,
                                             args.file)
            mode = "clang"
        except Exception as exc:  # libclang missing or parse failure
            if args.mode == "clang":
                print(f"rt-lint: clang mode unavailable: {exc}",
                      file=sys.stderr)
                return 2
            print(f"rt-lint: libclang unavailable ({exc.__class__.__name__});"
                  " falling back to regex mode")
            mode = "regex"
    if mode == "regex":
        model = build_model_regex(src_dirs, args.file)

    allow_entries, allow_errors = load_allowlist(args.allow)

    missing_roots = []
    if not args.no_require_roots:
        for req in REQUIRED_ROOTS:
            hits = [q for q in model.fns
                    if q == req or q.endswith("::" + req)]
            if not hits:
                missing_roots.append({"root": req, "why": "not found"})
            elif not any("safe" in model.fns[q].annotations for q in hits):
                missing_roots.append({"root": req,
                                      "why": "not annotated MUTE_RT_SAFE"})

    roots, order, violations, escapes, ambiguous, reached_via = traverse(
        model, allow_entries, edges=edges, verbose=args.verbose)
    for v in violations:
        chain, hop = [], v["function"]
        while hop in reached_via and len(chain) < 16:
            hop = reached_via[hop]
            chain.append(hop)
        v["reached_via"] = chain

    unused_allow = [e for e in allow_entries if not e["used"]]
    report = {
        "mode": mode,
        "functions_indexed": len(model.fns),
        "roots": roots,
        "reachable_count": len(order),
        "reachable": order,
        "violations": violations,
        "escapes": escapes,
        "ambiguous_calls": ambiguous,
        "missing_roots": missing_roots,
        "allowlist": {
            "file": args.allow,
            "entries": len(allow_entries),
            "unused": [e["function"] + "|" + e["construct"]
                       for e in unused_allow],
            "errors": allow_errors,
        },
    }
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)

    print(f"rt-lint [{mode}]: {len(model.fns)} functions indexed, "
          f"{len(roots)} RT roots, {len(order)} reachable, "
          f"{len(escapes)} escapes, {len(violations)} violations")
    for e in escapes:
        if args.verbose:
            print(f"  escape {e['function']}: {e['reason']}")
    for v in violations:
        print(f"  VIOLATION {v['file']}:{v['line']}: {v['function']}: "
              f"{v['construct']}: {v['detail']}")
        if v.get("reached_via"):
            print(f"    reached via: {' <- '.join(v['reached_via'])}")
    for m in missing_roots:
        print(f"  MISSING ROOT {m['root']}: {m['why']}")
    for err in allow_errors:
        print(f"  ALLOW-LIST ERROR {err}")
    if unused_allow:
        level = "ERROR" if args.strict_allow else "warning"
        for e in unused_allow:
            print(f"  allow-list {level}: unused entry "
                  f"{e['function']}|{e['construct']}")

    failed = bool(violations or missing_roots or allow_errors or
                  (args.strict_allow and unused_allow))
    if failed:
        print("rt-lint: FAIL")
        return 1
    print("rt-lint: per-sample surface is statically "
          "allocation/lock/throw-free")
    return 0


if __name__ == "__main__":
    sys.exit(main())
