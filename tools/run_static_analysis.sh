#!/usr/bin/env bash
# Static-analysis gate for the MUTE tree.
#
# Primary mode: clang-tidy over the compilation database produced by the
# `tidy` CMake preset, with .clang-tidy's WarningsAsErrors policy — any
# finding fails the run.
#
# Fallback mode (toolchains without clang-tidy, e.g. the GCC-only CI
# image): a strict re-compile of every translation unit in the database
# with -fsyntax-only and an extended warning set promoted to errors
# (tools/strict_syntax_check.py). Both modes exit non-zero on any finding,
# so `tools/run_static_analysis.sh && ...` is a valid gate either way.
#
# Usage: tools/run_static_analysis.sh [--build-dir DIR]

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="$ROOT/build-tidy"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir)
      BUILD_DIR="$2"
      shift 2
      ;;
    *)
      echo "unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "== configuring tidy preset (compilation database) =="
  cmake --preset tidy -S "$ROOT" -B "$BUILD_DIR"
fi

if command -v clang-tidy > /dev/null 2>&1; then
  echo "== clang-tidy over $BUILD_DIR/compile_commands.json =="
  mapfile -t FILES < <(python3 - "$BUILD_DIR/compile_commands.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as fh:
    db = json.load(fh)
files = sorted({e["file"] for e in db if "/src/" in e["file"]})
print("\n".join(files))
EOF
)
  clang-tidy -p "$BUILD_DIR" --quiet "${FILES[@]}"
  echo "clang-tidy: no findings"
else
  echo "== clang-tidy not found; strict GCC -fsyntax-only fallback =="
  python3 "$ROOT/tools/strict_syntax_check.py" \
    "$BUILD_DIR/compile_commands.json"
fi

echo "static analysis passed"
