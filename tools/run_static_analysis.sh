#!/usr/bin/env bash
# Static-analysis gate for the MUTE tree.
#
# Primary mode: clang-tidy over the compilation database produced by the
# `tidy` CMake preset, with .clang-tidy's WarningsAsErrors policy — any
# finding fails the run. Coverage is every first-party TU in the database:
# src/, bench/, examples/, and tests/ (the latter three under relaxed
# per-directory .clang-tidy profiles — nearest config wins).
#
# Fallback mode (toolchains without clang-tidy, e.g. the GCC-only CI
# image): a strict re-compile of every translation unit in the database
# with -fsyntax-only and an extended warning set promoted to errors
# (tools/strict_syntax_check.py).
#
# Third leg, both toolchains: tools/rt_lint.py — the annotation-driven
# real-time-safety gate (DESIGN.md §11). It walks the call graph from the
# MUTE_RT_SAFE roots and fails on any reachable allocation / lock / throw /
# banned API, writing a machine-readable report to
# $BUILD_DIR/rt_lint_report.json.
#
# All modes exit non-zero on any finding, so
# `tools/run_static_analysis.sh && ...` is a valid gate either way.
#
# Usage: tools/run_static_analysis.sh [--build-dir DIR] [--skip-rt-lint]
#        tools/run_static_analysis.sh --rt-lint-only   (the ci.sh rt-lint job)

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="$ROOT/build-tidy"
RUN_TIDY=1
RUN_RT_LINT=1

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir)
      BUILD_DIR="$2"
      shift 2
      ;;
    --rt-lint-only)
      RUN_TIDY=0
      shift
      ;;
    --skip-rt-lint)
      RUN_RT_LINT=0
      shift
      ;;
    *)
      echo "unknown argument: $1" >&2
      exit 2
      ;;
  esac
done

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "== configuring tidy preset (compilation database) =="
  cmake --preset tidy -S "$ROOT" -B "$BUILD_DIR"
fi

if [[ "$RUN_TIDY" == 1 ]]; then
  if command -v clang-tidy > /dev/null 2>&1; then
    echo "== clang-tidy over $BUILD_DIR/compile_commands.json =="
    mapfile -t FILES < <(python3 - "$BUILD_DIR/compile_commands.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as fh:
    db = json.load(fh)
# Every first-party TU: src/ plus the bench/examples/tests trees (their
# relaxed per-directory .clang-tidy profiles apply automatically). Vendored
# third-party sources (_deps) stay out.
WANT = ("/src/", "/bench/", "/examples/", "/tests/")
files = sorted({e["file"] for e in db
                if any(d in e["file"] for d in WANT)
                and "_deps" not in e["file"]})
print("\n".join(files))
EOF
)
    clang-tidy -p "$BUILD_DIR" --quiet "${FILES[@]}"
    echo "clang-tidy: no findings"
  else
    echo "== clang-tidy not found; strict GCC -fsyntax-only fallback =="
    python3 "$ROOT/tools/strict_syntax_check.py" \
      "$BUILD_DIR/compile_commands.json"
  fi
fi

if [[ "$RUN_RT_LINT" == 1 ]]; then
  echo "== rt-lint (static RT-safety gate, DESIGN.md §11) =="
  python3 "$ROOT/tools/rt_lint.py" \
    --compdb "$BUILD_DIR/compile_commands.json" \
    --report "$BUILD_DIR/rt_lint_report.json"
fi

echo "static analysis passed"
