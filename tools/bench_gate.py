#!/usr/bin/env python3
"""Perf-regression gate over bench/micro_dsp JSON output.

Compares a fresh `micro_dsp --json out.json` run against the committed
baseline (BENCH_baseline.json at the repo root) and fails when any PINNED
benchmark regressed by more than the threshold (default 1.5x).

Raw nanoseconds are meaningless across machines, so the gate never compares
them. Every benchmark time is first divided by the same run's
BM_Calibration time (a deliberately scalar, latency-bound naive dot that
tracks host FP speed but not SIMD width); only those dimensionless ratios
are compared between baseline and current. A uniformly slower CI runner
cancels out; a genuinely slower kernel does not.

Usage:
  bench/micro_dsp --json current.json
  tools/bench_gate.py current.json              # gate against baseline
  tools/bench_gate.py current.json --update     # rewrite the baseline
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_baseline.json"
CALIBRATION = "BM_Calibration"

# Benchmarks the gate enforces. Everything else in the JSON is informational
# (reported, never fatal) — sim-level benches are too workload-sensitive to
# pin, the kernel and per-sample-cycle benches are the hot-path contract.
PINNED = [
    "BM_KernelDot/1024",
    "BM_KernelEnergy/1024",
    "BM_KernelAxpyLeakyNorm/1024",
    "BM_KernelScaledAccumulate/1024",
    "BM_FirFilterPerSample/1024",
    "BM_FxlmsCycle/1024",
    "BM_FdLancBlock/2048",
    "BM_AdaptiveFirStep/1024",
    "BM_ShadowObserve/704",
    "BM_FleetThroughput/8",
]


def load_times(path: Path) -> dict[str, float]:
    """Map benchmark name -> cpu_time (ns) from a google-benchmark JSON."""
    with path.open() as fh:
        doc = json.load(fh)
    times: dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue  # keep raw runs; aggregates would double-count
        name = bench["name"]
        cpu = float(bench["cpu_time"])
        # Repeated runs: keep the minimum (least-noise estimate).
        times[name] = min(times.get(name, cpu), cpu)
    return times


def ratios(times: dict[str, float], label: str) -> dict[str, float]:
    cal = times.get(CALIBRATION)
    if not cal or cal <= 0.0:
        sys.exit(f"bench_gate: {label} JSON has no usable {CALIBRATION} "
                 "entry; run micro_dsp without a filter that excludes it")
    return {name: t / cal for name, t in times.items() if name != CALIBRATION}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", type=Path,
                    help="JSON produced by `micro_dsp --json <file>`")
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    ap.add_argument("--threshold", type=float, default=1.5,
                    help="fail when current/baseline ratio exceeds this")
    ap.add_argument("--update", action="store_true",
                    help="overwrite the baseline with the current JSON")
    args = ap.parse_args()

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"bench_gate: baseline updated from {args.current}")
        return 0

    if not args.baseline.exists():
        sys.exit(f"bench_gate: baseline {args.baseline} missing; "
                 "create it with --update")

    base = ratios(load_times(args.baseline), "baseline")
    curr = ratios(load_times(args.current), "current")

    failures: list[str] = []
    print(f"{'benchmark':<34} {'base':>9} {'curr':>9} {'x':>6}  status")
    for name in PINNED:
        if name not in base:
            failures.append(f"{name}: missing from baseline (re-run --update)")
            continue
        if name not in curr:
            failures.append(f"{name}: missing from current run")
            continue
        rel = curr[name] / base[name]
        status = "ok" if rel <= args.threshold else "REGRESSED"
        print(f"{name:<34} {base[name]:>9.3f} {curr[name]:>9.3f} "
              f"{rel:>5.2f}x  {status}")
        if rel > args.threshold:
            failures.append(
                f"{name}: {rel:.2f}x over baseline "
                f"(limit {args.threshold:.2f}x)")
    for name in sorted(set(base) & set(curr) - set(PINNED)):
        rel = curr[name] / base[name]
        print(f"{name:<34} {base[name]:>9.3f} {curr[name]:>9.3f} "
              f"{rel:>5.2f}x  info")

    if failures:
        print("\nbench_gate: FAIL")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbench_gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
