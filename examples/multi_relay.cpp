// Scenario: three relays cover the room (Section 4.2). The noise source
// moves; the client periodically GCC-PHAT-correlates each relay's
// forwarded waveform with its error mic and associates with the relay
// offering the largest positive lookahead — or none, when the source is
// closest to the client itself.
#include <cstdio>

#include "acoustics/environment.hpp"
#include "audio/generators.hpp"
#include "core/relay_select.hpp"
#include "core/timing.hpp"

int main() {
  using namespace mute;

  acoustics::Scene scene = acoustics::Scene::paper_office();
  const double fs = scene.sample_rate;
  const acoustics::Point client{3.0, 2.5, 1.2};
  const acoustics::Point relays[] = {
      {0.3, 2.5, 1.5}, {5.7, 0.4, 1.5}, {5.7, 4.6, 1.5}};

  std::printf("Multi-relay scenario: the noise source wanders around the "
              "office.\n\n");

  // The source walks along a path; every second the client re-selects.
  const acoustics::Point path[] = {
      {0.8, 2.5, 1.4},  // by the door (west)
      {1.5, 1.0, 1.4},  // south-west corner
      {4.5, 0.7, 1.4},  // along the south wall
      {5.3, 2.5, 1.4},  // east side
      {5.0, 4.3, 1.4},  // north-east
      {3.2, 2.7, 1.3},  // right next to the client
  };

  audio::WhiteNoiseSource noise(0.2, 3);
  core::RelaySelector selector(3, fs, /*period_s=*/1.0);

  for (const auto& pos : path) {
    acoustics::Scene s = scene;
    s.noise_source = pos;
    // Synthesize one second of what each microphone hears.
    const auto n_sig = noise.generate(static_cast<std::size_t>(fs));
    Signal streams[3] = {
        acoustics::build_path(s, pos, relays[0], "r0").apply(n_sig),
        acoustics::build_path(s, pos, relays[1], "r1").apply(n_sig),
        acoustics::build_path(s, pos, relays[2], "r2").apply(n_sig)};
    const auto ear = acoustics::build_path(s, pos, client, "ear").apply(n_sig);

    std::optional<core::RelaySelection> sel;
    for (std::size_t t = 0; t < ear.size(); ++t) {
      const Sample relay_samples[] = {streams[0][t], streams[1][t],
                                      streams[2][t]};
      if (auto fresh = selector.push(relay_samples, ear[t])) sel = fresh;
    }
    std::printf("source at (%.1f, %.1f): ", pos.x, pos.y);
    if (sel && sel->chosen) {
      std::printf("relay #%zu selected, lookahead %+.2f ms -> LANC active "
                  "(N = %zu taps)\n",
                  sel->chosen->relay_index + 1,
                  sel->chosen->lookahead_s * 1e3,
                  core::lookahead_taps(
                      core::usable_lookahead_s(
                          sel->chosen->lookahead_s,
                          core::LatencyBudget::mute_ear_device()),
                      fs));
    } else {
      std::printf("no relay offers positive lookahead -> cancellation "
                  "paused, user nudged to reposition\n");
    }
  }
  return 0;
}
