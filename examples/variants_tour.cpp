// Scenario tour of the Section 4.3 architectural variants:
//   (a) personal tabletop relay (DSP in the relay, RF both ways),
//   (b) public edge service (one DSP server, several users),
//   (c) smart noise (the relay rides on the noise source itself).
#include <cstdio>

#include "eval/metrics.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"
#include "sim/variants.hpp"

namespace {

double broadband_db(const mute::sim::SystemResult& r, double skip_s) {
  return mute::eval::cancellation_spectrum(r.disturbance, r.residual,
                                           r.sample_rate, skip_s)
      .average_db(50.0, 4000.0);
}

}  // namespace

int main() {
  using namespace mute;

  const auto scene = acoustics::Scene::paper_office();
  const double kDur = 8.0;
  std::printf("Architectural variants tour (Section 4.3).\n\n");

  // Baseline: standard wall relay.
  {
    auto cfg = sim::make_scheme_config(sim::Scheme::kMuteHollow, scene, 42);
    cfg.duration_s = kDur;
    auto noise = sim::make_noise(sim::NoiseKind::kWhite, scene.sample_rate, 7);
    const auto r = sim::run_anc_simulation(*noise, cfg);
    std::printf("baseline wall relay : %6.1f dB broadband (N = %zu)\n",
                broadband_db(r, kDur / 2), r.noncausal_taps);
  }

  // (a) Tabletop: anti-noise over RF downlink, error feedback uplinked.
  {
    auto cfg = sim::make_tabletop_config(scene, 42, /*rf_round_trip_ms=*/2.0);
    cfg.duration_s = kDur;
    auto noise = sim::make_noise(sim::NoiseKind::kWhite, scene.sample_rate, 7);
    const auto r = sim::run_anc_simulation(*noise, cfg);
    std::printf("tabletop relay      : %6.1f dB broadband "
                "(feedback delayed %zu samples, mu reduced)\n",
                broadband_db(r, kDur / 2),
                cfg.error_feedback_delay_samples);
  }

  // (c) Smart noise: relay mounted on the source, maximal lookahead.
  {
    auto cfg = sim::make_smart_noise_config(scene, 42);
    cfg.duration_s = kDur;
    auto noise = sim::make_noise(sim::NoiseKind::kWhite, scene.sample_rate, 7);
    const auto r = sim::run_anc_simulation(*noise, cfg);
    std::printf("smart noise         : %6.1f dB broadband "
                "(lookahead %.1f ms, N = %zu)\n",
                broadband_db(r, kDur / 2), r.acoustic_lookahead_s * 1e3,
                r.noncausal_taps);
  }

  // (b) Edge service: two users share the infrastructure.
  {
    std::vector<sim::EdgeUser> users = {
        {{4.0, 2.0, 1.2}, {4.0, 1.97, 1.2}},
        {{4.5, 3.5, 1.2}, {4.5, 3.47, 1.2}},
    };
    auto noise = sim::make_noise(sim::NoiseKind::kWhite, scene.sample_rate, 7);
    const auto result =
        sim::run_edge_service(*noise, scene, users, 42, 0.5, kDur);
    for (std::size_t u = 0; u < result.per_user.size(); ++u) {
      std::printf("edge service user %zu: %6.1f dB broadband\n", u + 1,
                  broadband_db(result.per_user[u], kDur / 2));
    }
  }

  std::printf("\nExpected ordering: smart noise >= wall relay > tabletop /"
              " edge (RF round trips eat budget and delay adaptation).\n");
  return 0;
}
