// Scenario: Alice's office (the paper's Figure 1). A colleague talks in
// the corridor while the HVAC hums; the IoT relay on the door forwards
// the sound over FM, and the open-ear device cancels it with LANC +
// predictive profiling. Writes before/after WAV files you can listen to.
#include <cstdio>
#include <exception>

#include "audio/generators.hpp"
#include "audio/speech_synth.hpp"
#include "audio/wav.hpp"
#include "eval/listener.hpp"
#include "eval/metrics.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"

namespace {

int run_scenario() {
  using namespace mute;

  const auto scene = acoustics::Scene::paper_office();
  const double fs = scene.sample_rate;

  // The corridor conversation: intermittent male voice near the door.
  audio::SpeechParams voice_params = audio::SpeechParams::male();
  voice_params.amplitude = 0.6;
  audio::SpeechSource conversation(voice_params, fs, 2024);

  // Continuous HVAC hum from the ceiling vent across the room.
  audio::MachineHumSource hvac(120.0, 0.08, fs, 77);

  sim::SystemConfig cfg =
      sim::make_scheme_config(sim::Scheme::kMuteHollow, scene, 11);
  cfg.duration_s = 12.0;
  cfg.profiling = true;          // speech comes and goes: cache filters
  cfg.profile_hysteresis = 24;   // ride out syllable gaps
  cfg.mu = 0.05;                 // non-stationary workload
  cfg.second_source_position = acoustics::Point{3.0, 4.6, 2.9};  // vent

  std::printf("Office-conversation scenario: corridor speech + HVAC hum.\n");
  const auto result = sim::run_anc_simulation(conversation, cfg, &hvac);

  const auto spec = eval::cancellation_spectrum(
      result.disturbance, result.residual, fs, cfg.duration_s / 2.0);
  std::printf("\nlookahead %.1f ms (N = %zu taps), profiles seen %zu, "
              "switches %zu\n",
              result.acoustic_lookahead_s * 1e3, result.noncausal_taps,
              result.profiles_seen, result.profile_switches);
  std::printf("cancellation: 0-1 kHz %.1f dB, speech band (0.3-3 kHz) %.1f dB,"
              " broadband %.1f dB\n",
              spec.average_db(30, 1000), spec.average_db(300, 3000),
              spec.average_db(30, 4000));

  // How would Alice rate it?
  eval::ListenerPanel panel(1, fs, 5);
  const auto rating = panel.rate(result.disturbance, result.residual);
  std::printf("simulated listener rating: %.1f / 5 stars\n", rating[0].score);

  audio::write_wav("office_before.wav", {result.disturbance, fs});
  audio::write_wav("office_after.wav", {result.residual, fs});
  std::printf("\nwrote office_before.wav / office_after.wav -- listen to the"
              " difference.\n");
  return 0;
}

}  // namespace

int main() {
  // write_wav throws on I/O failure (read-only cwd, disk full); exit with
  // a diagnostic instead of std::terminate.
  try {
    return run_scenario();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "office_conversation: error: %s\n", e.what());
    return 1;
  }
}
