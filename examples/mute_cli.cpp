// Command-line driver: run any evaluation scheme on any workload and
// print the cancellation summary (optionally writing before/after WAVs).
//
//   mute_cli [--scheme mute|bose|bose_overall|mute_passive]
//            [--noise white|male|female|construction|music|hum]
//            [--fault none|dropout|jammer|fade|impulse|drift]
//            [--seconds N] [--seed N] [--no-rf] [--profiling]
//            [--drift METERS] [--wav PREFIX]
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "audio/wav.hpp"
#include "eval/metrics.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"

namespace {

using namespace mute;

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [--scheme mute|bose|bose_overall|mute_passive]\n"
      "          [--noise white|male|female|construction|music|hum]\n"
      "          [--fault none|dropout|jammer|fade|impulse|drift]\n"
      "          [--seconds N] [--seed N] [--no-rf] [--profiling]\n"
      "          [--drift METERS] [--wav PREFIX]\n",
      argv0);
  std::exit(2);
}

sim::Scheme parse_scheme(const std::string& s, const char* argv0) {
  if (s == "mute") return sim::Scheme::kMuteHollow;
  if (s == "bose") return sim::Scheme::kBoseActive;
  if (s == "bose_overall") return sim::Scheme::kBoseOverall;
  if (s == "mute_passive") return sim::Scheme::kMutePassive;
  usage(argv0);
}

sim::NoiseKind parse_noise(const std::string& s, const char* argv0) {
  if (s == "white") return sim::NoiseKind::kWhite;
  if (s == "male") return sim::NoiseKind::kMaleVoice;
  if (s == "female") return sim::NoiseKind::kFemaleVoice;
  if (s == "construction") return sim::NoiseKind::kConstruction;
  if (s == "music") return sim::NoiseKind::kMusic;
  if (s == "hum") return sim::NoiseKind::kMachineHum;
  usage(argv0);
}

sim::FaultScenario parse_fault(const std::string& s, const char* argv0) {
  if (s == "none") return sim::FaultScenario::kNone;
  if (s == "dropout") return sim::FaultScenario::kRelayDropout;
  if (s == "jammer") return sim::FaultScenario::kJammerBurst;
  if (s == "fade") return sim::FaultScenario::kDeepFade;
  if (s == "impulse") return sim::FaultScenario::kImpulseNoise;
  if (s == "drift") return sim::FaultScenario::kClockDrift;
  usage(argv0);
}

int run_cli(int argc, char** argv) {
  sim::Scheme scheme = sim::Scheme::kMuteHollow;
  sim::NoiseKind noise_kind = sim::NoiseKind::kWhite;
  sim::FaultScenario fault = sim::FaultScenario::kNone;
  double seconds = 10.0;
  std::uint64_t seed = 42;
  bool no_rf = false;
  bool profiling = false;
  double drift = 0.0;
  std::string wav_prefix;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scheme") {
      scheme = parse_scheme(next(), argv[0]);
    } else if (arg == "--noise") {
      noise_kind = parse_noise(next(), argv[0]);
    } else if (arg == "--fault") {
      fault = parse_fault(next(), argv[0]);
    } else if (arg == "--seconds") {
      seconds = std::stod(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--no-rf") {
      no_rf = true;
    } else if (arg == "--profiling") {
      profiling = true;
    } else if (arg == "--drift") {
      drift = std::stod(next());
    } else if (arg == "--wav") {
      wav_prefix = next();
    } else {
      usage(argv[0]);
    }
  }

  const auto scene = acoustics::Scene::paper_office();
  auto cfg = sim::make_scheme_config(scheme, scene, seed);
  cfg.duration_s = seconds;
  if (no_rf) cfg.use_rf_link = false;
  cfg.profiling = profiling;
  cfg.head_drift_m = drift;
  // Script the fault across the middle of the run so there is converged
  // cancellation both before and after it.
  sim::apply_fault_scenario(cfg, fault, /*start_s=*/0.45 * seconds,
                            /*duration_s=*/0.05 * seconds);

  auto noise = sim::make_noise(noise_kind, scene.sample_rate, seed + 1000);
  std::printf("running %s on %s for %.1f s (seed %llu)...\n",
              sim::scheme_name(scheme), sim::noise_name(noise_kind), seconds,
              static_cast<unsigned long long>(seed));
  if (fault != sim::FaultScenario::kNone) {
    std::printf("fault scenario: %s (link supervision armed)\n",
                sim::fault_scenario_name(fault));
  }
  const auto result = sim::run_anc_simulation(*noise, cfg);

  const double skip = seconds / 2.0;
  const auto spec = eval::cancellation_spectrum(
      result.disturbance, result.residual, result.sample_rate, skip);
  const double power = eval::band_cancellation_db(
      result.disturbance, result.residual, result.sample_rate, 30, 4000, skip);

  std::printf("\nlookahead %.2f ms | link delay %.2f ms | N = %zu taps\n",
              result.acoustic_lookahead_s * 1e3, result.link_delay_s * 1e3,
              result.noncausal_taps);
  std::printf("cancellation: broadband power %.1f dB | per-bin dB-mean "
              "0-1k %.1f, 1-4k %.1f\n",
              power, spec.average_db(30, 1000), spec.average_db(1000, 4000));
  if (profiling) {
    std::printf("profiles %zu, switches %zu\n", result.profiles_seen,
                result.profile_switches);
  }
  if (fault != sim::FaultScenario::kNone) {
    std::printf("link faults: %zu episode(s), %.2f s flagged, first at "
                "%.2f s, recovered at %.2f s, %zu weight rollback(s)\n",
                result.link_fault_episodes,
                static_cast<double>(result.link_fault_samples) /
                    result.sample_rate,
                result.first_fault_s, result.last_recovery_s,
                result.weight_rollbacks);
  }

  if (!wav_prefix.empty()) {
    audio::write_wav(wav_prefix + "_before.wav",
                     {result.disturbance, result.sample_rate});
    audio::write_wav(wav_prefix + "_after.wav",
                     {result.residual, result.sample_rate});
    std::printf("wrote %s_before.wav / %s_after.wav\n", wav_prefix.c_str(),
                wav_prefix.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // WAV I/O (and config validation) reports failures as exceptions; a CLI
  // should turn them into a diagnostic and a nonzero exit, not a terminate.
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mute_cli: error: %s\n", e.what());
    return 1;
  }
}
