// Quickstart: cancel wide-band noise in a simulated office with MUTE.
//
// Builds the paper's Figure 2 deployment — an IoT relay near the noise
// source forwarding audio over an analog FM link to an open-ear device
// running LANC — and reports how much quieter the ear gets.
#include <cstdio>

#include "eval/metrics.hpp"
#include "sim/scenarios.hpp"
#include "sim/system.hpp"

int main() {
  using namespace mute;

  // 1. The scene: noise near the office door, relay on the wall beside
  //    it, the listener across the room.
  const auto scene = acoustics::Scene::paper_office();

  // 2. MUTE_Hollow: wireless reference, open ear (no passive shell).
  sim::SystemConfig cfg =
      sim::make_scheme_config(sim::Scheme::kMuteHollow, scene, /*seed=*/42);
  cfg.duration_s = 8.0;

  // 3. The disturbance: unpredictable wide-band white noise.
  auto noise = sim::make_noise(sim::NoiseKind::kWhite, scene.sample_rate, 7);

  std::printf("Running MUTE end-to-end simulation (%.0f s of audio)...\n",
              cfg.duration_s);
  const sim::SystemResult result = sim::run_anc_simulation(*noise, cfg);

  std::printf("\n-- timing --\n");
  std::printf("acoustic lookahead : %7.2f ms (Eq. 4 geometry)\n",
              result.acoustic_lookahead_s * 1e3);
  std::printf("FM link delay      : %7.2f ms\n", result.link_delay_s * 1e3);
  std::printf("usable lookahead   : %7.2f ms after the Eq. 3 budget\n",
              result.usable_lookahead_s * 1e3);
  std::printf("non-causal taps N  : %zu\n", result.noncausal_taps);
  std::printf("h_se calibration   : %7.2f dB residual\n",
              result.calibration_error_db);

  const auto spec = eval::cancellation_spectrum(
      result.disturbance, result.residual, result.sample_rate);
  std::printf("\n-- cancellation at the ear --\n");
  std::printf("0-1 kHz   : %6.2f dB\n", spec.average_db(30.0, 1000.0));
  std::printf("1-4 kHz   : %6.2f dB\n", spec.average_db(1000.0, 4000.0));
  std::printf("broadband : %6.2f dB\n", spec.average_db(30.0, 4000.0));
  std::printf("\n(negative = quieter; the paper reports roughly -15 dB "
              "broadband for MUTE_Hollow)\n");
  return 0;
}
