// The online API: a MuteDevice driven one sample at a time, exactly like
// firmware would — power-up calibration, relay association by GCC-PHAT,
// live LANC, automatic re-association when the noise source moves to the
// other side of the room, and graceful degradation (kHolding) when the
// active relay's battery dies mid-run.
#include <cmath>
#include <cstdio>

#include "audio/generators.hpp"
#include "core/mute_device.hpp"
#include "dsp/fir_filter.hpp"

int main() {
  using namespace mute;
  const double fs = kDefaultSampleRate;

  // A compact two-relay world: the source starts near relay 0 (40 samples
  // of lead) and, mid-run, teleports next to relay 1 (relay 0 now lags).
  audio::WhiteNoiseSource noise(0.2, 7);
  dsp::FirFilter h_se({0.0, 0.9, 0.2});
  Signal history;
  const int kMove = static_cast<int>(8.0 * fs);
  const int kDrop = static_cast<int>(12.0 * fs);

  core::MuteDeviceConfig cfg;
  cfg.relay_count = 2;
  cfg.calibration_s = 0.5;
  cfg.secondary_taps = 32;
  cfg.selection_period_s = 0.5;
  cfg.lanc.fxlms.causal_taps = 64;
  cfg.lanc.fxlms.mu = 0.4;
  core::MuteDevice device(cfg);

  std::printf("Streaming MuteDevice demo: calibrate -> associate -> cancel"
              " -> source moves -> re-associate.\n\n");

  Sample speaker = 0.0f, error = 0.0f;
  Signal relay_feed(2, 0.0f);
  double acc = 0.0;
  int n = 0;
  auto state_name = [](core::MuteDevice::State s) {
    switch (s) {
      case core::MuteDevice::State::kCalibrating: return "calibrating";
      case core::MuteDevice::State::kListening: return "listening  ";
      case core::MuteDevice::State::kRunning: return "running    ";
      case core::MuteDevice::State::kHolding: return "holding    ";
      case core::MuteDevice::State::kHandoff: return "handoff    ";
    }
    return "?";
  };

  const int total = static_cast<int>(16.0 * fs);
  for (int t = 0; t < total; ++t) {
    speaker = device.tick(relay_feed, error);

    // Physics: ear 60 samples from the source; relay leads depend on era.
    Signal one(1);
    noise.render(one);
    if (history.size() < 9600) one[0] = 0.0f;  // quiet during calibration
    history.push_back(one[0]);
    const std::size_t now = history.size() - 1;
    const std::size_t lead0 = (t < kMove) ? 40 : 0;   // relay 0
    const std::size_t lead1 = (t < kMove) ? 0 : 40;   // relay 1
    const Sample ambient = (now >= 60) ? history[now - 60] : 0.0f;
    relay_feed[0] = (now >= 60 - lead0) ? history[now - (60 - lead0)] : 0.0f;
    relay_feed[1] = (now >= 60 - lead1) ? history[now - (60 - lead1)] : 0.0f;
    // Era 3: the active relay's battery dies for half a second — the link
    // monitor flags silence, the device enters kHolding (anti-noise faded
    // out, weights frozen) and resumes when the relay comes back.
    if (t >= kDrop && t < kDrop + static_cast<int>(0.5 * fs)) {
      relay_feed[1] = 0.0f;
    }
    error = static_cast<Sample>(static_cast<double>(ambient) +
                                static_cast<double>(h_se.process(speaker)));

    acc += static_cast<double>(error) * static_cast<double>(error);
    ++n;
    if (t % 8000 == 7999) {
      std::printf("t=%5.1fs  state=%s  relay=%s  N=%3zu  residual rms=%.2e\n",
                  (t + 1) / fs, state_name(device.state()),
                  device.active_relay()
                      ? std::to_string(*device.active_relay()).c_str()
                      : "-",
                  device.noncausal_taps(), std::sqrt(acc / n));
      acc = 0.0;
      n = 0;
    }
    if (t == kMove) {
      std::printf("        >>> noise source moved across the room <<<\n");
    }
    if (t == kDrop) {
      std::printf("        >>> active relay battery died (0.5 s) <<<\n");
    }
  }
  std::printf("\nExpected: relay 0 first, deep cancellation; after the move"
              " the device\nre-associates with relay 1 and recovers; the"
              " battery dropout parks it in\nkHolding (%zu hold%s) and it"
              " resumes when the relay returns.\n",
              device.hold_count(), device.hold_count() == 1 ? "" : "s");
  return 0;
}
